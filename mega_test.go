package mega_test

import (
	"os"
	"testing"

	"mega"
	"mega/internal/testutil"
)

func demoEvolution(t testing.TB) *mega.Evolution {
	t.Helper()
	spec := mega.GraphSpec{
		Name: "demo", Vertices: 512, Edges: 6_000,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 9,
	}
	ev, err := mega.Evolve(spec, mega.EvolutionSpec{Snapshots: 6, BatchFraction: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestQuickstartFlow(t *testing.T) {
	ev := demoEvolution(t)
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	values, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 6 {
		t.Fatalf("Evaluate returned %d snapshots, want 6", len(values))
	}
	for s := range values {
		want := testutil.ReferenceEdges(w.NumVertices(), w.SnapshotEdges(s),
			mega.NewAlgorithm(mega.SSSP), 0)
		if !testutil.EqualValues(values[s], want) {
			t.Errorf("snapshot %d values diverge from reference", s)
		}
	}
}

func TestEvaluateWithStats(t *testing.T) {
	ev := demoEvolution(t)
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	var stats mega.Stats
	if _, err := mega.Evaluate(w, mega.BFS, 0, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.EdgesRead == 0 {
		t.Errorf("stats not collected: %+v", stats)
	}
}

func TestSolveStatic(t *testing.T) {
	g, err := mega.NewGraph(3, []mega.Edge{{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 2, Weight: 3}})
	if err != nil {
		t.Fatal(err)
	}
	vals := mega.Solve(g, mega.SSSP, 0, nil)
	if vals[2] != 5 {
		t.Errorf("dist(2) = %v, want 5", vals[2])
	}
}

func TestSimulateEndToEnd(t *testing.T) {
	ev := demoEvolution(t)
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	js, err := mega.SimulateJetStream(ev, mega.SSWP, 0, mega.JetStreamSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	boe, err := mega.Simulate(w, mega.SSWP, 0, mega.BOE, mega.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if js.Cycles <= 0 || boe.Cycles <= 0 {
		t.Fatal("zero cycle counts")
	}
	// Final snapshot solutions must agree between baseline and MEGA.
	last := len(boe.SnapshotValues) - 1
	if !testutil.EqualValues(js.SnapshotValues[last], boe.SnapshotValues[last]) {
		t.Error("JetStream and MEGA disagree on the final snapshot")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, k := range mega.Algorithms() {
		got, err := mega.ParseAlgorithm(k.String())
		if err != nil || got != k {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", k.String(), got, err)
		}
	}
}

func TestPaperGraphsExposed(t *testing.T) {
	if len(mega.PaperGraphs()) != 6 {
		t.Errorf("PaperGraphs = %d entries, want 6", len(mega.PaperGraphs()))
	}
}

func TestWindowFromPartsPublicAPI(t *testing.T) {
	initial := mega.EdgeList{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}}.Normalize()
	adds := []mega.EdgeList{{{Src: 0, Dst: 2, Weight: 1}}}
	dels := []mega.EdgeList{{{Src: 1, Dst: 2, Weight: 1}}}
	w, err := mega.NewWindowFromParts(3, 2, initial, adds, dels)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := mega.Evaluate(w, mega.BFS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0][2] != 2 {
		t.Errorf("snapshot 0 hops(2) = %v, want 2", vals[0][2])
	}
	if vals[1][2] != 1 {
		t.Errorf("snapshot 1 hops(2) = %v, want 1 (via added edge)", vals[1][2])
	}
}

func TestEvaluateParallelPublicAPI(t *testing.T) {
	ev := demoEvolution(t)
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := mega.Evaluate(w, mega.SSNP, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := mega.EvaluateParallel(w, mega.SSNP, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := range seq {
		if !testutil.EqualValues(seq[s], par[s]) {
			t.Errorf("snapshot %d: parallel and sequential disagree", s)
		}
	}
}

func TestEdgeListWorkflow(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/graph.txt"
	content := "# demo\n0 1 2\n1 2 3\n2 3 1\n3 4 2\n0 2 9\n1 3 4\n2 4 6\n0 3 8\n"
	if err := writeFileHelper(path, content); err != nil {
		t.Fatal(err)
	}
	n, edges, err := mega.LoadEdgeList(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || len(edges) != 8 {
		t.Fatalf("loaded V=%d E=%d", n, len(edges))
	}
	ev, err := mega.EvolveFromEdges(n, edges, mega.EvolutionSpec{Snapshots: 2, BatchFraction: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mega.Evaluate(w, mega.SSSP, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateRecomputePublicAPI(t *testing.T) {
	ev := demoEvolution(t)
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := mega.SimulateRecompute(w, mega.BFS, 0, mega.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	boe, err := mega.Simulate(w, mega.BFS, 0, mega.BOE, mega.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles <= boe.Cycles {
		t.Errorf("recompute %d cycles not above BOE %d", rec.Cycles, boe.Cycles)
	}
}

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
