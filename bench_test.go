// Benchmarks regenerating the paper's evaluation, one benchmark group per
// table/figure, plus core-kernel microbenchmarks. These run on reduced
// workloads so `go test -bench=.` finishes quickly; the full paper-scale
// sweeps are produced by cmd/megabench.
package mega_test

import (
	"sync"
	"testing"

	"mega"
	"mega/internal/algo"
	"mega/internal/bench"
	"mega/internal/engine"
	"mega/internal/evolve"
	"mega/internal/gen"
	"mega/internal/power"
	"mega/internal/sched"
	"mega/internal/sim"
	"mega/internal/swcost"
)

var (
	benchOnce sync.Once
	benchEv   *gen.Evolution
	benchWin  *evolve.Window
	benchHG   *sim.HopGraphs
	benchSrc  mega.VertexID
)

func benchWorkload(b *testing.B) (*gen.Evolution, *evolve.Window, *sim.HopGraphs, mega.VertexID) {
	b.Helper()
	benchOnce.Do(func() {
		spec := gen.GraphSpec{
			Name: "bench", Vertices: 2_048, Edges: 40_960,
			A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 77,
		}
		ev, err := gen.Evolve(spec, gen.EvolutionSpec{Snapshots: 16, BatchFraction: 0.01, Seed: 7})
		if err != nil {
			panic(err)
		}
		win, err := evolve.NewWindow(ev)
		if err != nil {
			panic(err)
		}
		hg, err := sim.BuildHopGraphs(ev)
		if err != nil {
			panic(err)
		}
		deg := make([]int, spec.Vertices)
		best := 0
		for _, e := range ev.Initial {
			deg[e.Src]++
			if deg[e.Src] > deg[best] {
				best = int(e.Src)
			}
		}
		benchEv, benchWin, benchHG, benchSrc = ev, win, hg, mega.VertexID(best)
	})
	return benchEv, benchWin, benchHG, benchSrc
}

// --- Figure 2: deletion vs addition batch cost on JetStream ---

func BenchmarkFig02_JetStreamWindow(b *testing.B) {
	ev, _, hg, src := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunJetStreamOn(ev, hg, algo.SSSP, src, sim.JetStreamConfig(), false); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: schedule generation and addition counting ---

func BenchmarkFig03_ScheduleDirectHop(b *testing.B) {
	_, win, _, _ := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		_ = sched.NewDirectHop(win).AdditionsProcessed()
	}
}

func BenchmarkFig03_ScheduleWorkSharing(b *testing.B) {
	_, win, _, _ := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		_ = sched.NewWorkSharing(win).AdditionsProcessed()
	}
}

func BenchmarkFig03_ScheduleBOE(b *testing.B) {
	_, win, _, _ := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		_ = sched.NewBOE(win).AdditionsProcessed()
	}
}

// --- Figures 4/5: the reuse measurement machinery (functional engine) ---

func BenchmarkFig04_05_FunctionalBOE(b *testing.B) {
	_, win, _, src := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sched.New(sched.BOE, win)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.NewMulti(win, algo.New(algo.SSSP), src, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Software-BOE parallel engine: worker scaling (Figure 14 context) ---

func benchmarkParallelWorkers(b *testing.B, workers int) {
	_, win, _, src := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := sched.New(sched.BOE, win)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.NewParallel(win, algo.New(algo.SSSP), src, workers)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelWorkers1(b *testing.B) { benchmarkParallelWorkers(b, 1) }
func BenchmarkParallelWorkers2(b *testing.B) { benchmarkParallelWorkers(b, 2) }
func BenchmarkParallelWorkers4(b *testing.B) { benchmarkParallelWorkers(b, 4) }
func BenchmarkParallelWorkers8(b *testing.B) { benchmarkParallelWorkers(b, 8) }

// --- Figure 10: round-series capture ---

func BenchmarkFig10_RoundSeries(b *testing.B) {
	ev, _, hg, src := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunJetStreamOn(ev, hg, algo.SSWP, src, sim.JetStreamConfig(), true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 4: the four simulated workflows ---

func benchmarkMEGA(b *testing.B, mode sched.Mode, k algo.Kind) {
	_, win, _, src := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunMEGA(win, k, src, mode, sim.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4_DirectHop(b *testing.B)   { benchmarkMEGA(b, sched.DirectHop, algo.SSSP) }
func BenchmarkTable4_WorkSharing(b *testing.B) { benchmarkMEGA(b, sched.WorkSharing, algo.SSSP) }
func BenchmarkTable4_BOE(b *testing.B)         { benchmarkMEGA(b, sched.BOE, algo.SSSP) }
func BenchmarkTable4_BOE_SSWP(b *testing.B)    { benchmarkMEGA(b, sched.BOE, algo.SSWP) }

// --- Figure 14: software baseline pricing ---

func BenchmarkFig14_SoftwareModels(b *testing.B) {
	_, win, _, src := benchWorkload(b)
	r, err := sim.RunMEGA(win, algo.SSSP, src, sched.WorkSharing, sim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	counts := swcost.FromStats(r.Counts, 4_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = swcost.KickStarter.RuntimeMs(counts)
		_ = swcost.RisGraph.RuntimeMs(counts)
		_ = swcost.RisGraphBOE.RuntimeMs(counts)
		_ = swcost.Subway.RuntimeMs(counts)
	}
}

// --- Figure 15: partitioned configuration ---

func BenchmarkFig15_SmallMemoryBOE(b *testing.B) {
	_, win, _, src := benchWorkload(b)
	cfg := sim.DefaultConfig()
	cfg.OnChipBytes = 64 << 10 // forces partitioning
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunMEGA(win, algo.SSSP, src, sched.BOE, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 16-18: counter extraction ---

func BenchmarkFig16to18_Counters(b *testing.B) {
	_, win, _, src := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := sim.RunMEGA(win, algo.BFS, src, sched.BOE, sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Counts.EdgesRead + r.Counts.Events + r.Counts.Applied
	}
}

// --- Figures 19-21: workload synthesis for the sweeps ---

func BenchmarkFig19_BatchSizePoint(b *testing.B) {
	spec := gen.GraphSpec{
		Name: "sweep", Vertices: 2_048, Edges: 40_960,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 78,
	}
	for i := 0; i < b.N; i++ {
		ev, err := gen.Evolve(spec, gen.EvolutionSpec{Snapshots: 16, BatchFraction: 0.002, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := evolve.NewWindow(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20_SnapshotCountPoint(b *testing.B) {
	spec := gen.GraphSpec{
		Name: "sweep", Vertices: 2_048, Edges: 40_960,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 79,
	}
	for i := 0; i < b.N; i++ {
		ev, err := gen.Evolve(spec, gen.EvolutionSpec{Snapshots: 24, BatchFraction: 0.001, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := evolve.NewWindow(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig21_ImbalancedWindow(b *testing.B) {
	spec := gen.GraphSpec{
		Name: "sweep", Vertices: 2_048, Edges: 40_960,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 80,
	}
	for i := 0; i < b.N; i++ {
		ev, err := gen.Evolve(spec, gen.EvolutionSpec{Snapshots: 16, BatchFraction: 0.01, Imbalance: 4, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := evolve.NewWindow(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 5: power/area model ---

func BenchmarkTable5_PowerModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = power.Model(power.MEGA())
		_, _ = power.Overheads()
	}
}

// --- Core kernels ---

func BenchmarkCore_StaticSolveSSSP(b *testing.B) {
	ev, _, hg, src := benchWorkload(b)
	_ = ev
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = engine.Solve(hg.G0, algo.New(algo.SSSP), src, engine.NopProbe{})
	}
}

func BenchmarkCore_WindowConstruction(b *testing.B) {
	ev, _, _, _ := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := evolve.NewWindow(ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCore_RMATGeneration(b *testing.B) {
	spec := gen.GraphSpec{
		Name: "rmat", Vertices: 2_048, Edges: 40_960,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 81,
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.RMAT(spec, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCore_EvaluatePublicAPI(b *testing.B) {
	_, win, _, src := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mega.Evaluate(win, mega.SSSP, src); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: the experiment registry stays runnable end to end on a minimal
// context (exercised as a benchmark so `-bench` covers the harness too).
func BenchmarkHarness_Fig3(b *testing.B) {
	c := bench.NewContext()
	c.Graphs = []gen.GraphSpec{{
		Name: "Wen", Vertices: 1_024, Edges: 20_480,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 82,
	}}
	c.Algos = []algo.Kind{algo.SSSP}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig3(c); err != nil {
			b.Fatal(err)
		}
	}
}
