// Command megaserve runs the hardened HTTP front end for the concurrent
// evolving-graph query service, or acts as its one-shot client.
//
// Server mode (default):
//
//	megaserve [-listen 127.0.0.1:8080] [-addr-file FILE]
//	          [-graph PK|LJ|OR|DL|UK|Wen] [-snapshots 16] [-batch 0.01] [-load dir]
//	          [-capacity 4] [-queue-depth 64] [-default-deadline D] [-default-queue-timeout D]
//	          [-tenants name:weight[:maxrun[:maxqueue[:burst]]]]... [-tenants @FILE]
//	          [-drain 10s] [-allow-faults] [-fault-seed 42]
//	          [-state-dir DIR] [-checkpoint-every N]
//
// -state-dir enables the crash-safe durable checkpoint store: running
// queries spool checkpoints there, and a cold start against the same
// directory validates the store, re-admits orphaned in-flight work, and
// resumes it from its last durable checkpoint (see DESIGN.md §15 and the
// README's "Surviving crashes" walkthrough). /stats gains a store block.
//
// It synthesizes (or loads) an evolving-graph window, stands up the
// admission-controlled query service over it, and serves:
//
//	POST /v1/query   run one query (JSON spec: algo, source, priority,
//	                 deadline, queue_timeout, engine, workers, label)
//	GET  /healthz    process liveness (always ok while the process serves)
//	GET  /readyz     admission readiness (flips false the moment a drain begins)
//	GET  /metrics    JSON snapshot of the metrics registry
//	GET  /stats      service accounting snapshot + retry_after_hint_ms
//
// Failures map onto the status codes 400 invalid / 422 divergence /
// 429 overload (with Retry-After) / 499 caller hung up / 503 draining /
// 504 deadline / 500 internal, each with a structured JSON error body
// whose "kind" field carries the megaerr taxonomy across the wire.
//
// SIGINT/SIGTERM triggers the ordered graceful drain: readiness flips,
// the HTTP layer stops accepting and finishes in-flight requests, then
// the query service drains within -drain. A clean drain exits 0.
//
// Tenant QoS: each -tenants spec registers one tenant's contract —
// scheduling weight, then optional max-running, max-queued, and burst
// caps. The flag repeats, and "-tenants @FILE" reads one spec per line
// (blank lines and #-comments ignored). Requests select their tenant
// via the X-Mega-Tenant header; untagged requests bill to "default".
//
// Client mode (-server URL): submit one query (or fetch -stats) against a
// running megaserve, with typed-error reconstruction and bounded retries
// on 429/503/connection failures:
//
//	megaserve -server http://127.0.0.1:8080 [-algo SSSP] [-source 0]
//	          [-priority high] [-deadline 2s] [-engine par] [-workers 4]
//	          [-tenant NAME] [-retries 3] [-stats]
//
// -stats prints the aggregate accounting line followed by one
// "tenant=" line per tenant the service has seen.
//
// Exit codes (same contract as megasim): 0 success, 1 generic failure,
// 2 invalid input, 3 canceled, 4 query divergence, 5 checkpoint
// corruption, 6 invariant-audit violation, 7 service overload.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mega"
	"mega/internal/httpfront"
)

// Exit codes, mirroring megasim's documented contract.
const (
	exitOK         = 0
	exitGeneric    = 1
	exitInvalid    = 2
	exitCanceled   = 3
	exitDivergence = 4
	exitCheckpoint = 5
	exitAudit      = 6
	exitOverload   = 7
)

// classify maps a typed error to its documented exit code and stderr
// prefix — the same table as megasim's, kept in sync by the table test.
func classify(err error) (code int, prefix string) {
	switch {
	case err == nil:
		return exitOK, ""
	case errors.Is(err, mega.ErrInvalidInput):
		return exitInvalid, "invalid input"
	case errors.Is(err, mega.ErrCheckpoint):
		return exitCheckpoint, "checkpoint"
	case errors.Is(err, mega.ErrOverload):
		return exitOverload, "overloaded"
	case errors.Is(err, mega.ErrCanceled):
		return exitCanceled, "canceled"
	case errors.Is(err, mega.ErrDivergence):
		return exitDivergence, "query diverged"
	case errors.Is(err, mega.ErrAudit):
		return exitAudit, "invariant audit failed"
	default:
		return exitGeneric, ""
	}
}

// tenantSpecsFlag collects repeated -tenants values verbatim; parsing
// happens in parseTenantSpecs so the grammar errors carry the taxonomy.
type tenantSpecsFlag []string

func (f *tenantSpecsFlag) String() string { return strings.Join(*f, ",") }
func (f *tenantSpecsFlag) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// parseTenantSpecs expands and parses the -tenants values into a tenant
// table. A value starting with '@' names a file holding one spec per
// line; blank lines and lines starting with '#' are skipped. Duplicate
// tenant names are refused.
func parseTenantSpecs(specs []string) (map[string]mega.TenantConfig, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	tenants := make(map[string]mega.TenantConfig)
	add := func(spec string) error {
		name, cfg, err := mega.ParseTenantSpec(spec)
		if err != nil {
			return err
		}
		if _, dup := tenants[name]; dup {
			return fmt.Errorf("%w: -tenants: duplicate tenant %q", mega.ErrInvalidInput, name)
		}
		tenants[name] = cfg
		return nil
	}
	for _, spec := range specs {
		if !strings.HasPrefix(spec, "@") {
			if err := add(spec); err != nil {
				return nil, err
			}
			continue
		}
		path := spec[1:]
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("%w: -tenants %s: %v", mega.ErrInvalidInput, spec, err)
		}
		for _, line := range strings.Split(string(raw), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if err := add(line); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	return tenants, nil
}

func exitWith(err error) {
	code, prefix := classify(err)
	if prefix != "" {
		fmt.Fprintf(os.Stderr, "megaserve: %s: %v\n", prefix, err)
	} else {
		fmt.Fprintln(os.Stderr, "megaserve:", err)
	}
	os.Exit(code)
}

func main() {
	// Server-mode flags.
	listen := flag.String("listen", "127.0.0.1:8080", "server: listen address (port 0 = ephemeral)")
	addrFile := flag.String("addr-file", "", "server: write the bound address to this file (for ephemeral ports)")
	graphName := flag.String("graph", "PK", "server: paper stand-in graph name")
	snapshots := flag.Int("snapshots", 16, "server: snapshot window size")
	batch := flag.Float64("batch", 0.01, "server: per-hop batch fraction of edges")
	imbalance := flag.Float64("imbalance", 1, "server: largest/smallest batch ratio")
	load := flag.String("load", "", "server: load a megagen dataset directory instead of synthesizing")
	edgeList := flag.String("edgelist", "", "server: build the window from a SNAP-style edge-list file")
	capacity := flag.Int("capacity", 0, "server: max concurrently running queries (0 = default 4)")
	queueDepth := flag.Int("queue-depth", 0, "server: max queued queries (0 = default 64)")
	defDeadline := flag.Duration("default-deadline", 0, "server: deadline for requests that set none (0 = none)")
	defQueueTimeout := flag.Duration("default-queue-timeout", 0, "server: queue timeout for requests that set none (0 = none)")
	drain := flag.Duration("drain", 10*time.Second, "server: graceful-drain deadline at shutdown")
	allowFaults := flag.Bool("allow-faults", false, "server: honor fault-injection specs in query bodies (chaos testing)")
	faultSeed := flag.Int64("fault-seed", 42, "server: seed for probabilistic fault ops")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "server: cross-query result cache budget in bytes (0 disables sharing)")
	stateDir := flag.String("state-dir", "", "server: durable checkpoint store directory (empty disables crash recovery)")
	stateBytes := flag.Int64("state-bytes", 0, "server: durable store byte budget (0 = default 256MiB)")
	ckptEvery := flag.Int("checkpoint-every", 0, "server: checkpoint running queries every N rounds (0 = default 32)")
	var tenantSpecs tenantSpecsFlag
	flag.Var(&tenantSpecs, "tenants", "server: tenant contract name:weight[:maxrun[:maxqueue[:burst[:cachebytes]]]], repeatable; @FILE reads one per line")

	// Client-mode flags.
	server := flag.String("server", "", "client: server base URL; presence selects client mode")
	algoName := flag.String("algo", "SSSP", "client: algorithm: BFS SSSP SSWP SSNP Viterbi CC")
	source := flag.Int64("source", 0, "client: source vertex")
	priority := flag.String("priority", "", "client: low, normal, or high")
	deadline := flag.Duration("deadline", 0, "client: per-query deadline (0 = server default)")
	queueTimeout := flag.Duration("queue-timeout", 0, "client: queue-wait bound (0 = server default)")
	engine := flag.String("engine", "", "client: seq or par")
	workers := flag.Int("workers", 0, "client: parallel workers (0 = server GOMAXPROCS)")
	tenant := flag.String("tenant", "", "client: tenant to bill the query to (X-Mega-Tenant header)")
	retries := flag.Int("retries", 0, "client: max retries on overload/draining (0 = default 3, negative = none)")
	stats := flag.Bool("stats", false, "client: fetch /stats instead of querying")
	var clientFaults tenantSpecsFlag
	flag.Var(&clientFaults, "fault", "client: fault-injection spec for the query (repeatable; server must run -allow-faults)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var err error
	if *server != "" {
		err = runClient(ctx, clientOptions{
			server: *server, algo: *algoName, source: *source, priority: *priority,
			deadline: *deadline, queueTimeout: *queueTimeout, engine: *engine,
			workers: *workers, tenant: *tenant, retries: *retries, stats: *stats,
			faults: clientFaults,
		})
	} else {
		err = runServer(ctx, serverOptions{
			listen: *listen, addrFile: *addrFile,
			graph: *graphName, snapshots: *snapshots, batch: *batch, imbalance: *imbalance,
			load: *load, edgeList: *edgeList,
			capacity: *capacity, queueDepth: *queueDepth,
			defDeadline: *defDeadline, defQueueTimeout: *defQueueTimeout,
			tenantSpecs: tenantSpecs,
			drain:       *drain, allowFaults: *allowFaults, faultSeed: *faultSeed,
			cacheBytes: *cacheBytes,
			stateDir:   *stateDir, stateBytes: *stateBytes, ckptEvery: *ckptEvery,
		})
	}
	if err != nil {
		exitWith(err)
	}
}

type serverOptions struct {
	listen, addrFile             string
	graph                        string
	snapshots                    int
	batch, imbalance             float64
	load, edgeList               string
	capacity, queueDepth         int
	defDeadline, defQueueTimeout time.Duration
	tenantSpecs                  []string
	drain                        time.Duration
	allowFaults                  bool
	faultSeed                    int64
	cacheBytes                   int64
	stateDir                     string
	stateBytes                   int64
	ckptEvery                    int
}

// buildWindow synthesizes or loads the evolving-graph window the server
// answers queries over, reusing megagen's formats.
func buildWindow(ctx context.Context, opt serverOptions) (*mega.Window, error) {
	var ev *mega.Evolution
	var err error
	switch {
	case opt.load != "":
		ev, err = mega.LoadEvolutionContext(ctx, opt.load)
	case opt.edgeList != "":
		var n int
		var edges mega.EdgeList
		if n, edges, err = mega.LoadEdgeList(opt.edgeList, 1); err == nil {
			ev, err = mega.EvolveFromEdges(n, edges, mega.EvolutionSpec{
				Snapshots: opt.snapshots, BatchFraction: opt.batch, Imbalance: opt.imbalance, Seed: 42,
			})
		}
	default:
		var spec mega.GraphSpec
		found := false
		for _, s := range mega.PaperGraphs() {
			if strings.EqualFold(s.Name, opt.graph) {
				spec, found = s, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: unknown graph %q", mega.ErrInvalidInput, opt.graph)
		}
		ev, err = mega.Evolve(spec, mega.EvolutionSpec{
			Snapshots: opt.snapshots, BatchFraction: opt.batch, Imbalance: opt.imbalance, Seed: 42,
		})
	}
	if err != nil {
		return nil, err
	}
	return mega.NewWindow(ev)
}

func runServer(ctx context.Context, opt serverOptions) error {
	win, err := buildWindow(ctx, opt)
	if err != nil {
		return err
	}
	tenants, err := parseTenantSpecs(opt.tenantSpecs)
	if err != nil {
		return err
	}
	reg := mega.NewMetricsRegistry()
	var store *mega.CheckpointStore
	if opt.stateDir != "" {
		store, err = mega.OpenCheckpointStore(mega.CheckpointStoreConfig{
			Dir:      opt.stateDir,
			MaxBytes: opt.stateBytes,
			Metrics:  reg,
		})
		if err != nil {
			return err
		}
	}
	svc, err := mega.NewQueryService(mega.ServeOptions{
		Capacity:            opt.capacity,
		QueueDepth:          opt.queueDepth,
		DefaultDeadline:     opt.defDeadline,
		DefaultQueueTimeout: opt.defQueueTimeout,
		Tenants:             tenants,
		CacheBytes:          opt.cacheBytes,
		CheckpointEvery:     opt.ckptEvery,
		Metrics:             reg,
		Store:               store,
	})
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	if store != nil {
		// Cold-start recovery: re-admit the in-flight work a dead process
		// left in the store; each orphan resumes from its last durable
		// checkpoint in the background under normal admission control.
		n, rerr := svc.RecoverOrphans(ctx, win)
		if rerr != nil {
			cctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			svc.Close(cctx)
			return rerr
		}
		fmt.Fprintf(os.Stderr, "megaserve: state dir %s: recovered %d orphaned queries\n", opt.stateDir, n)
	}
	front, err := httpfront.New(httpfront.Config{
		Service:             svc,
		Window:              win,
		Metrics:             reg,
		AllowFaultInjection: opt.allowFaults,
		FaultSeed:           opt.faultSeed,
	})
	if err != nil {
		// The service never served; close it with a bounded drain so the
		// error path does not leak its goroutines.
		cctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		svc.Close(cctx)
		return err
	}

	ln, err := net.Listen("tcp", opt.listen)
	if err != nil {
		cctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		svc.Close(cctx)
		return fmt.Errorf("%w: listen %s: %v", mega.ErrInvalidInput, opt.listen, err)
	}
	addr := ln.Addr().String()
	if opt.addrFile != "" {
		if err := writeFileAtomic(opt.addrFile, []byte(addr+"\n")); err != nil {
			ln.Close()
			cctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			svc.Close(cctx)
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "megaserve: serving %s (%d vertices, %d snapshots) on http://%s\n",
		opt.graph, win.NumVertices(), win.NumSnapshots(), addr)

	serveErr := make(chan error, 1)
	go func() { serveErr <- front.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener failed on its own; drain the service regardless.
		dctx, cancel := context.WithTimeout(context.Background(), opt.drain)
		defer cancel()
		return errors.Join(err, front.Shutdown(dctx))
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "megaserve: signal received, draining (deadline %s)\n", opt.drain)
	dctx, cancel := context.WithTimeout(context.Background(), opt.drain)
	defer cancel()
	if err := front.Shutdown(dctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "megaserve: drained cleanly")
	return nil
}

type clientOptions struct {
	server       string
	algo         string
	source       int64
	priority     string
	deadline     time.Duration
	queueTimeout time.Duration
	engine       string
	workers      int
	tenant       string
	retries      int
	stats        bool
	faults       []string
}

func runClient(ctx context.Context, opt clientOptions) error {
	c, err := httpfront.NewClient(httpfront.ClientConfig{
		BaseURL:    opt.server,
		MaxRetries: opt.retries,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	if opt.stats {
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("state=%s admitted=%d completed=%d failed=%d canceled=%d rejected=%d shed=%d running=%d queued=%d retry_after_hint=%s\n",
			st.State, st.Admitted, st.Completed, st.Failed, st.Canceled,
			st.Rejected, st.Shed, st.Running, st.Queued,
			time.Duration(st.RetryAfterHintMs)*time.Millisecond)
		if st.Cache.MaxBytes > 0 {
			fmt.Printf("cache hits=%d misses=%d lookups=%d coalesced=%d batched=%d seeded=%d engine_runs=%d entries=%d bytes=%d/%d\n",
				st.Cache.Hits, st.Cache.Misses, st.Cache.Lookups,
				st.CoalescedQueries, st.BatchedQueries, st.SeededQueries, st.EngineRuns,
				st.Cache.Entries, st.Cache.Bytes, st.Cache.MaxBytes)
		}
		if st.Store.MaxBytes > 0 {
			fmt.Printf("store queries=%d segments=%d bytes=%d/%d writes=%d promoted=%d failed=%d quarantined=%d reclaimed=%d resumes=%d\n",
				st.Store.Queries, st.Store.Segments, st.Store.Bytes, st.Store.MaxBytes,
				st.Store.Writes, st.Store.Promoted, st.Store.Failed,
				st.Store.Quarantined, st.Store.Reclaimed, st.Store.Resumes)
		}
		for _, tn := range st.Tenants {
			fmt.Printf("tenant=%s weight=%d admitted=%d completed=%d failed=%d canceled=%d rejected=%d shed=%d running=%d queued=%d retry_after_hint=%s\n",
				tn.Name, tn.Weight, tn.Admitted, tn.Completed, tn.Failed,
				tn.Canceled, tn.Rejected, tn.Shed, tn.Running, tn.Queued,
				time.Duration(tn.RetryAfterHintMs)*time.Millisecond)
		}
		return nil
	}

	res, err := c.Query(ctx, httpfront.QuerySpec{
		Algo:         opt.algo,
		Source:       opt.source,
		Priority:     opt.priority,
		Deadline:     httpfront.Duration(opt.deadline),
		QueueTimeout: httpfront.Duration(opt.queueTimeout),
		Engine:       opt.engine,
		Workers:      opt.workers,
		Tenant:       opt.tenant,
		Faults:       opt.faults,
	})
	if err != nil {
		return err
	}
	cache := res.Report.Cache
	if cache == "" {
		cache = "none"
	}
	fmt.Printf("snapshots=%d engine=%s cache=%s resumed=%t attempts=%d queue_wait=%s run_time=%s request_id=%s\n",
		len(res.Values), res.Report.Engine, cache, res.Report.Resumed, res.Report.Attempts,
		time.Duration(res.Report.QueueWait), time.Duration(res.Report.RunTime), res.RequestID)
	for i, snap := range res.Values {
		reached := 0
		for _, v := range snap {
			if !isUnreached(v) {
				reached++
			}
		}
		fmt.Printf("snapshot %2d: %d/%d vertices reached\n", i, reached, len(snap))
	}
	return nil
}

// isUnreached reports whether v is an identity value (±Inf) — an
// unreached vertex under every built-in algorithm.
func isUnreached(v float64) bool { return math.IsInf(v, 0) }

// writeFileAtomic persists b via the store's crash-safe publish helper
// (temp-file + fsync + rename + parent-directory fsync) so a concurrently
// polling reader never sees a truncated address file and a crash right
// after the write cannot lose it.
func writeFileAtomic(path string, b []byte) error {
	return mega.AtomicWriteFile(path, b)
}
