package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mega"
)

// TestClassifyExitCodes pins the full exit-code contract — one row per
// documented code, the same table megasim enforces — so a remote query's
// exit code matches the in-process run's for every failure class.
func TestClassifyExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code int
	}{
		{"success", nil, exitOK},
		{"generic", errors.New("unclassified failure"), exitGeneric},
		{"invalid", fmt.Errorf("bad flag: %w", mega.ErrInvalidInput), exitInvalid},
		{"canceled-sentinel", fmt.Errorf("stopped: %w", mega.ErrCanceled), exitCanceled},
		{"canceled-typed", &mega.CanceledError{Phase: "round 3", Err: context.Canceled}, exitCanceled},
		{"divergence", fmt.Errorf("runaway: %w", mega.ErrDivergence), exitDivergence},
		{"checkpoint", fmt.Errorf("corrupt: %w", mega.ErrCheckpoint), exitCheckpoint},
		{"audit", fmt.Errorf("violated: %w", mega.ErrAudit), exitAudit},
		{"overload-sentinel", fmt.Errorf("full: %w", mega.ErrOverload), exitOverload},
		{"overload-typed", &mega.OverloadError{Reason: "queue full", Capacity: 4, Queued: 64}, exitOverload},
		{"worker-panic", &mega.WorkerPanicError{Shard: 2, Value: "boom"}, exitGeneric},
	}
	seen := map[int]bool{}
	for _, c := range cases {
		code, _ := classify(c.err)
		if code != c.code {
			t.Errorf("classify(%s) = %d, want %d", c.name, code, c.code)
		}
		seen[c.code] = true
	}
	for code := exitOK; code <= exitOverload; code++ {
		if !seen[code] {
			t.Errorf("exit code %d has no covering table row", code)
		}
	}
}

func TestBuildWindowUnknownGraph(t *testing.T) {
	_, err := buildWindow(context.Background(), serverOptions{graph: "NoSuchGraph", snapshots: 2, batch: 0.01, imbalance: 1})
	if !errors.Is(err, mega.ErrInvalidInput) {
		t.Errorf("buildWindow = %v, want ErrInvalidInput", err)
	}
}

// TestParseTenantSpecs covers the -tenants flag surface: repeated
// inline specs, @file expansion with comments and blanks, and the
// rejection paths (bad grammar, duplicate names, missing file) — all
// ErrInvalidInput so the process exits 2.
func TestParseTenantSpecs(t *testing.T) {
	if m, err := parseTenantSpecs(nil); err != nil || m != nil {
		t.Errorf("parseTenantSpecs(nil) = %v, %v, want nil table", m, err)
	}

	m, err := parseTenantSpecs([]string{"gold:4:8:32:8", "bronze:1"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]mega.TenantConfig{
		"gold":   {Weight: 4, MaxRunning: 8, MaxQueued: 32, Burst: 8},
		"bronze": {Weight: 1},
	}
	if len(m) != len(want) || m["gold"] != want["gold"] || m["bronze"] != want["bronze"] {
		t.Errorf("parseTenantSpecs = %+v, want %+v", m, want)
	}

	path := filepath.Join(t.TempDir(), "tenants.conf")
	file := "# fleet contracts\ngold:4:8:32:8\n\nbronze:1\n"
	if err := os.WriteFile(path, []byte(file), 0o644); err != nil {
		t.Fatal(err)
	}
	fm, err := parseTenantSpecs([]string{"@" + path})
	if err != nil {
		t.Fatal(err)
	}
	if len(fm) != len(want) || fm["gold"] != want["gold"] || fm["bronze"] != want["bronze"] {
		t.Errorf("@file table = %+v, want %+v", fm, want)
	}

	for _, bad := range [][]string{
		{"noweight"},
		{"gold:0"},
		{"gold:4", "gold:2"},   // duplicate inline
		{"@" + path, "gold:2"}, // duplicate across file and inline
		{"@" + filepath.Join(t.TempDir(), "absent")}, // missing file
		{":4"},
	} {
		if _, err := parseTenantSpecs(bad); !errors.Is(err, mega.ErrInvalidInput) {
			t.Errorf("parseTenantSpecs(%q) = %v, want ErrInvalidInput", bad, err)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr")
	if err := writeFileAtomic(path, []byte("127.0.0.1:1234\n")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "127.0.0.1:1234\n" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	// Overwrite must go through the same atomic rename.
	if err := writeFileAtomic(path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if b, _ = os.ReadFile(path); string(b) != "x" {
		t.Errorf("after overwrite = %q", b)
	}
}
