package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mega"
)

// TestClassifyExitCodes pins the full exit-code contract — one row per
// documented code, the same table megasim enforces — so a remote query's
// exit code matches the in-process run's for every failure class.
func TestClassifyExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code int
	}{
		{"success", nil, exitOK},
		{"generic", errors.New("unclassified failure"), exitGeneric},
		{"invalid", fmt.Errorf("bad flag: %w", mega.ErrInvalidInput), exitInvalid},
		{"canceled-sentinel", fmt.Errorf("stopped: %w", mega.ErrCanceled), exitCanceled},
		{"canceled-typed", &mega.CanceledError{Phase: "round 3", Err: context.Canceled}, exitCanceled},
		{"divergence", fmt.Errorf("runaway: %w", mega.ErrDivergence), exitDivergence},
		{"checkpoint", fmt.Errorf("corrupt: %w", mega.ErrCheckpoint), exitCheckpoint},
		{"audit", fmt.Errorf("violated: %w", mega.ErrAudit), exitAudit},
		{"overload-sentinel", fmt.Errorf("full: %w", mega.ErrOverload), exitOverload},
		{"overload-typed", &mega.OverloadError{Reason: "queue full", Capacity: 4, Queued: 64}, exitOverload},
		{"worker-panic", &mega.WorkerPanicError{Shard: 2, Value: "boom"}, exitGeneric},
	}
	seen := map[int]bool{}
	for _, c := range cases {
		code, _ := classify(c.err)
		if code != c.code {
			t.Errorf("classify(%s) = %d, want %d", c.name, code, c.code)
		}
		seen[c.code] = true
	}
	for code := exitOK; code <= exitOverload; code++ {
		if !seen[code] {
			t.Errorf("exit code %d has no covering table row", code)
		}
	}
}

func TestBuildWindowUnknownGraph(t *testing.T) {
	_, err := buildWindow(context.Background(), serverOptions{graph: "NoSuchGraph", snapshots: 2, batch: 0.01, imbalance: 1})
	if !errors.Is(err, mega.ErrInvalidInput) {
		t.Errorf("buildWindow = %v, want ErrInvalidInput", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "addr")
	if err := writeFileAtomic(path, []byte("127.0.0.1:1234\n")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "127.0.0.1:1234\n" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	// Overwrite must go through the same atomic rename.
	if err := writeFileAtomic(path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if b, _ = os.ReadFile(path); string(b) != "x" {
		t.Errorf("after overwrite = %q", b)
	}
}
