// Command megabench regenerates the tables and figures of the MEGA
// paper's evaluation on the scaled stand-in workloads.
//
// Usage:
//
//	megabench [-exp id[,id...]] [-quick] [-v]
//
// With no -exp flag every experiment runs in paper order. Experiment IDs:
// fig2 fig3 fig4 fig5 fig10 table4 fig14 fig15 fig16 fig17 fig18 fig19
// fig20 fig21 table5.
//
// With -perf the paper experiments are skipped and the engine throughput
// regression harness runs instead, writing BENCH_parallel.json (override
// with -perfout, or "-" for stdout only).
//
// With -metrics FILE every freshly simulated configuration's instrument
// families and invariant-audit outcomes accumulate into one registry,
// written as a JSON snapshot after the selected experiments finish. The
// snapshot is validated by `megasim -verify-metrics`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mega/internal/algo"
	"mega/internal/bench"
	"mega/internal/gen"
	"mega/internal/metrics"
)

// logWriter avoids handing RunPerfBench a non-nil interface wrapping a nil
// *os.File, which would make its `log != nil` check pass and then panic.
func logWriter(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

func main() {
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "use smaller graphs and fewer algorithms")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "text", "output format: text or csv")
	perf := flag.Bool("perf", false, "run the engine throughput regression harness instead of experiments")
	perfOut := flag.String("perfout", "BENCH_parallel.json", "perf harness JSON output path (- for stdout only)")
	perfRounds := flag.Int("perfrounds", 3, "perf harness repetitions per configuration (best-of)")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot of the simulated runs to this file")
	flag.Parse()

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "megabench: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *perf {
		var log *os.File
		if *verbose {
			log = os.Stderr
		}
		rep, err := bench.RunPerfBench(*quick, nil, *perfRounds, logWriter(log))
		if err != nil {
			fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
			os.Exit(1)
		}
		rep.Fprint(os.Stdout)
		if *perfOut != "-" {
			f, err := os.Create(*perfOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(1)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "megabench: wrote %s\n", *perfOut)
		}
		return
	}

	c := bench.NewContext()
	if *verbose {
		c.Log = os.Stderr
	}
	if *metricsPath != "" {
		c.Metrics = metrics.New()
	}
	if *quick {
		c.Graphs = []gen.GraphSpec{
			{Name: "PK", Vertices: 1_024, Edges: 19_200, A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 101},
			{Name: "LJ", Vertices: 2_048, Edges: 35_000, A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 102},
			{Name: "Wen", Vertices: 4_096, Edges: 120_000, A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 106},
		}
		c.Algos = []algo.Kind{algo.BFS, algo.SSSP, algo.SSWP}
	}

	ids := bench.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, id := range ids {
		e, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "megabench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		tables, err := e.Run(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "megabench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *format == "csv" {
				t.FprintCSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", e.ID, time.Since(t0).Seconds())
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "[total %.1fs]\n", time.Since(start).Seconds())
	}
	if c.Metrics != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "megabench: metrics: %v\n", err)
			os.Exit(1)
		}
		if err := c.Metrics.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "megabench: metrics: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "megabench: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "megabench: wrote %s\n", *metricsPath)
	}
}
