// Command megabench regenerates the tables and figures of the MEGA
// paper's evaluation on the scaled stand-in workloads.
//
// Usage:
//
//	megabench [-exp id[,id...]] [-quick] [-v]
//
// With no -exp flag every experiment runs in paper order. Experiment IDs:
// fig2 fig3 fig4 fig5 fig10 table4 fig14 fig15 fig16 fig17 fig18 fig19
// fig20 fig21 table5.
//
// With -perf the paper experiments are skipped and the engine throughput
// regression harness runs instead, writing BENCH_parallel.json (override
// with -perfout, or "-" for stdout only). The harness also records the
// worker-count × GOMAXPROCS scaling trajectory — each point runs the
// parallel engine with N workers under GOMAXPROCS=N — alongside the
// machine's real core count, so committed numbers stay honest about the
// hardware that produced them. -perfprocs overrides the swept values
// ("1,2,4"), and -perfprocs none skips the trajectory.
//
// With -inflation-gate RATIO the experiments are skipped and the
// deterministic event-inflation gate runs instead: the parallel engine's
// events/op is measured (no timing) at worker counts 1/2/4/8 under both
// GOMAXPROCS=1 and GOMAXPROCS=2, divided by the sequential engine's
// events/op, and the process exits 1 if any point exceeds RATIO. CI uses
// this to keep the event-inflation gap closed.
//
// With -metrics FILE every freshly simulated configuration's instrument
// families and invariant-audit outcomes accumulate into one registry,
// written as a JSON snapshot after the selected experiments finish. The
// snapshot is validated by `megasim -verify-metrics`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mega/internal/algo"
	"mega/internal/bench"
	"mega/internal/gen"
	"mega/internal/metrics"
)

// logWriter avoids handing RunPerfBench a non-nil interface wrapping a nil
// *os.File, which would make its `log != nil` check pass and then panic.
func logWriter(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

// parseProcs parses the -perfprocs list; "" selects the default sweep.
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var procs []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var p int
		if _, err := fmt.Sscanf(part, "%d", &p); err != nil || p < 1 {
			return nil, fmt.Errorf("bad -perfprocs value %q", part)
		}
		procs = append(procs, p)
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("empty -perfprocs list")
	}
	return procs, nil
}

func main() {
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "use smaller graphs and fewer algorithms")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	format := flag.String("format", "text", "output format: text or csv")
	perf := flag.Bool("perf", false, "run the engine throughput regression harness instead of experiments")
	perfOut := flag.String("perfout", "BENCH_parallel.json", "perf harness JSON output path (- for stdout only)")
	perfRounds := flag.Int("perfrounds", 3, "perf harness repetitions per configuration (best-of)")
	perfProcs := flag.String("perfprocs", "", "perf trajectory GOMAXPROCS values, comma-separated (empty = powers of 2 up to NumCPU plus 2x oversubscription; none = skip)")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot of the simulated runs to this file")
	inflationGate := flag.Float64("inflation-gate", 0, "fail (exit 1) if parallel/sequential events_per_op exceeds this ratio at any worker count (0 = off)")
	flag.Parse()

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "megabench: unknown format %q\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *inflationGate > 0 {
		var log *os.File
		if *verbose {
			log = os.Stderr
		}
		results, seq, err := bench.RunInflationGate(*quick, nil, logWriter(log))
		if err != nil {
			fmt.Fprintf(os.Stderr, "megabench: inflation-gate: %v\n", err)
			os.Exit(1)
		}
		t := bench.Table{
			ID:     "inflation",
			Title:  fmt.Sprintf("Event inflation vs sequential (%d events/op), gate %.2fx", seq, *inflationGate),
			Header: []string{"Workers", "GOMAXPROCS", "events/op", "inflation"},
		}
		worst := 0.0
		for _, r := range results {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", r.Workers),
				fmt.Sprintf("%d", r.Procs),
				fmt.Sprintf("%d", r.EventsPerOp),
				fmt.Sprintf("%.3fx", r.Inflation),
			})
			if r.Inflation > worst {
				worst = r.Inflation
			}
		}
		t.Fprint(os.Stdout)
		if worst > *inflationGate {
			fmt.Fprintf(os.Stderr, "megabench: event inflation %.3fx exceeds gate %.2fx\n", worst, *inflationGate)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "megabench: inflation gate passed (worst %.3fx ≤ %.2fx)\n", worst, *inflationGate)
		return
	}

	if *perf {
		var log *os.File
		if *verbose {
			log = os.Stderr
		}
		rep, err := bench.RunPerfBench(*quick, nil, *perfRounds, logWriter(log))
		if err != nil {
			fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
			os.Exit(1)
		}
		if *perfProcs != "none" {
			procs, err := parseProcs(*perfProcs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(2)
			}
			traj, err := bench.RunPerfTrajectory(*quick, procs, *perfRounds, logWriter(log))
			if err != nil {
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(1)
			}
			rep.Trajectory = traj
		}
		rep.Fprint(os.Stdout)
		if *perfOut != "-" {
			f, err := os.Create(*perfOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(1)
			}
			if err := rep.WriteJSON(f); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "megabench: perf: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "megabench: wrote %s\n", *perfOut)
		}
		return
	}

	c := bench.NewContext()
	if *verbose {
		c.Log = os.Stderr
	}
	if *metricsPath != "" {
		c.Metrics = metrics.New()
	}
	if *quick {
		c.Graphs = []gen.GraphSpec{
			{Name: "PK", Vertices: 1_024, Edges: 19_200, A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 101},
			{Name: "LJ", Vertices: 2_048, Edges: 35_000, A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 102},
			{Name: "Wen", Vertices: 4_096, Edges: 120_000, A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 106},
		}
		c.Algos = []algo.Kind{algo.BFS, algo.SSSP, algo.SSWP}
	}

	ids := bench.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, id := range ids {
		e, ok := bench.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "megabench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		tables, err := e.Run(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "megabench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *format == "csv" {
				t.FprintCSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", e.ID, time.Since(t0).Seconds())
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "[total %.1fs]\n", time.Since(start).Seconds())
	}
	if c.Metrics != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "megabench: metrics: %v\n", err)
			os.Exit(1)
		}
		if err := c.Metrics.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "megabench: metrics: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "megabench: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "megabench: wrote %s\n", *metricsPath)
	}
}
