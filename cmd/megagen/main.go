// Command megagen synthesizes an evolving-graph dataset — an initial
// R-MAT snapshot plus per-hop addition and deletion batches — and writes
// it as a plain-text directory consumable by megasim -load.
//
// Usage:
//
//	megagen -o dataset/ [-graph Wen | -vertices N -edges M]
//	        [-snapshots 16] [-batch 0.01] [-imbalance 1] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"mega"
)

func main() {
	out := flag.String("o", "", "output directory (required)")
	graphName := flag.String("graph", "", "paper stand-in name; overrides -vertices/-edges")
	vertices := flag.Int("vertices", 4096, "vertex count")
	edges := flag.Int("edges", 65536, "edge count")
	snapshots := flag.Int("snapshots", 16, "snapshot window size")
	batch := flag.Float64("batch", 0.01, "per-hop batch fraction of edges")
	imbalance := flag.Float64("imbalance", 1, "largest/smallest batch ratio")
	maxWeight := flag.Float64("maxweight", 16, "maximum integer edge weight")
	seed := flag.Int64("seed", 42, "generation seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "megagen: -o output directory is required")
		os.Exit(2)
	}

	spec := mega.GraphSpec{
		Name: "custom", Vertices: *vertices, Edges: *edges,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: *maxWeight, Seed: *seed,
	}
	if *graphName != "" {
		found := false
		for _, s := range mega.PaperGraphs() {
			if s.Name == *graphName {
				spec, found = s, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "megagen: unknown graph %q\n", *graphName)
			os.Exit(2)
		}
	}

	ev, err := mega.Evolve(spec, mega.EvolutionSpec{
		Snapshots: *snapshots, BatchFraction: *batch, Imbalance: *imbalance, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "megagen:", err)
		os.Exit(1)
	}
	if err := mega.SaveEvolution(ev, *out); err != nil {
		fmt.Fprintln(os.Stderr, "megagen:", err)
		os.Exit(1)
	}
	adds, dels := ev.TotalChanges()
	fmt.Printf("wrote %s: V=%d, |G_0|=%d edges, %d snapshots, %d additions + %d deletions\n",
		*out, ev.NumVertices, len(ev.Initial), ev.NumSnapshots(), adds, dels)
}
