package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"mega"
)

// querySpec is one parsed line of a -queries file.
type querySpec struct {
	req   mega.QueryRequest
	plan  *mega.FaultPlan
	label string
}

// parseQuerySpec parses one query line of the serve-mode input. Lines are
// whitespace-separated key=value pairs:
//
//	algo=SSSP source=7 priority=high deadline=2s queue-timeout=100ms \
//	    engine=par workers=4 label=q7 tenant=team-a fault=engine.round:transient@3
//
// Every key is optional; algo, source, and engine default to the
// corresponding megasim flags. tenant bills the query to that tenant's
// admission quota (absent = the default tenant). fault is repeatable and
// builds a per-query deterministic fault plan seeded by seed.
func parseQuerySpec(line string, defaults querySpec, seed int64) (querySpec, error) {
	spec := defaults
	var plan *mega.FaultPlan
	for _, field := range strings.Fields(line) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return spec, fmt.Errorf("%w: query field %q is not key=value", mega.ErrInvalidInput, field)
		}
		switch key {
		case "algo":
			kind, err := mega.ParseAlgorithm(val)
			if err != nil {
				return spec, err
			}
			spec.req.Algo = kind
		case "source":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return spec, fmt.Errorf("%w: bad source %q", mega.ErrInvalidInput, val)
			}
			spec.req.Source = mega.VertexID(v)
		case "priority":
			p, err := mega.ParseQueryPriority(val)
			if err != nil {
				return spec, err
			}
			spec.req.Priority = p
		case "deadline":
			d, err := time.ParseDuration(val)
			if err != nil {
				return spec, fmt.Errorf("%w: bad deadline %q: %v", mega.ErrInvalidInput, val, err)
			}
			spec.req.Deadline = d
		case "queue-timeout":
			d, err := time.ParseDuration(val)
			if err != nil {
				return spec, fmt.Errorf("%w: bad queue-timeout %q: %v", mega.ErrInvalidInput, val, err)
			}
			spec.req.QueueTimeout = d
		case "engine":
			switch val {
			case "seq":
				spec.req.Parallel = false
			case "par":
				spec.req.Parallel = true
			default:
				return spec, fmt.Errorf("%w: unknown engine %q (want seq or par)", mega.ErrInvalidInput, val)
			}
		case "workers":
			v, err := strconv.Atoi(val)
			if err != nil {
				return spec, fmt.Errorf("%w: bad workers %q", mega.ErrInvalidInput, val)
			}
			spec.req.Workers = v
		case "label":
			spec.label = val
		case "tenant":
			if err := mega.ValidateQueryTenant(val); err != nil {
				return spec, err
			}
			spec.req.Tenant = val
		case "fault":
			op, err := mega.ParseFaultOp(val)
			if err != nil {
				return spec, err
			}
			if plan == nil {
				plan = mega.NewFaultPlan(seed)
			}
			plan.Add(op)
		default:
			return spec, fmt.Errorf("%w: unknown query field %q", mega.ErrInvalidInput, key)
		}
	}
	spec.plan = plan
	return spec, nil
}

// readQuerySpecs parses the serve-mode input: one query per line, blank
// lines and #-comments skipped. path "-" reads stdin.
func readQuerySpecs(path string, defaults querySpec, seed int64) ([]querySpec, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("%w: opening queries file: %v", mega.ErrInvalidInput, err)
		}
		defer f.Close()
		r = f
	}
	var specs []querySpec
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		spec, err := parseQuerySpec(line, defaults, seed+int64(lineNo))
		if err != nil {
			return nil, fmt.Errorf("queries line %d: %w", lineNo, err)
		}
		if spec.label == "" {
			spec.label = fmt.Sprintf("q%d", len(specs))
		}
		specs = append(specs, spec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: reading queries: %v", mega.ErrInvalidInput, err)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: no queries in %s", mega.ErrInvalidInput, path)
	}
	return specs, nil
}

// runServe answers a batch of concurrent queries through the admission-
// controlled query service and reports each query's status, the service's
// accounting, and (with -metrics) a snapshot including the drain audit.
// The process exit status reflects the first failed query, if any.
func runServe(ctx context.Context, w *mega.Window, kind mega.AlgorithmKind, src mega.VertexID, opts evalOptions, reg *mega.MetricsRegistry) error {
	if opts.queries == "" {
		return fmt.Errorf("%w: -mode serve requires -queries FILE (use - for stdin)", mega.ErrInvalidInput)
	}
	defaults := querySpec{req: mega.QueryRequest{
		Window:   w,
		Algo:     kind,
		Source:   src,
		Parallel: opts.engine == "par",
		Workers:  opts.workers,
	}}
	specs, err := readQuerySpecs(opts.queries, defaults, opts.faultSeed)
	if err != nil {
		return err
	}

	var store *mega.CheckpointStore
	if opts.stateDir != "" {
		store, err = mega.OpenCheckpointStore(mega.CheckpointStoreConfig{
			Dir:     opts.stateDir,
			Faults:  mega.FaultPlanFromContext(ctx),
			Metrics: reg,
		})
		if err != nil {
			return err
		}
	}
	svc, err := mega.NewQueryService(mega.ServeOptions{
		Capacity:        opts.capacity,
		QueueDepth:      opts.queueDepth,
		CheckpointEvery: opts.ckptEvery,
		MaxRetries:      opts.retries,
		CacheBytes:      opts.cacheBytes,
		Metrics:         reg,
		Store:           store, // service takes ownership; Close closes it
	})
	if err != nil {
		if store != nil {
			store.Close()
		}
		return err
	}
	if store != nil {
		// Cold start: re-admit whatever a killed process left behind so
		// those queries finish alongside this run's batch.
		if n, rerr := svc.RecoverOrphans(ctx, w); rerr != nil {
			drainCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			svc.Close(drainCtx)
			return rerr
		} else if n > 0 {
			fmt.Printf("recovered:       %d orphaned queries from %s\n", n, opts.stateDir)
		}
	}

	type outcome struct {
		res *mega.QueryResult
		err error
	}
	outcomes := make([]outcome, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec querySpec) {
			defer wg.Done()
			qctx := ctx
			if spec.plan != nil {
				qctx = mega.WithFaultPlan(qctx, spec.plan)
			}
			res, err := svc.Submit(qctx, spec.req)
			outcomes[i] = outcome{res: res, err: err}
		}(i, spec)
	}
	wg.Wait()

	drain := opts.drain
	if drain <= 0 {
		drain = 10 * time.Second
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	closeErr := svc.Close(drainCtx)

	fmt.Printf("workflow:        serve / %d queries (capacity %d, queue %d)\n",
		len(specs), opts.capacity, opts.queueDepth)
	var firstErr error
	failed := 0
	for i, o := range outcomes {
		if o.err != nil {
			failed++
			if firstErr == nil {
				firstErr = o.err
			}
			fmt.Printf("  query %-12s FAILED: %v\n", specs[i].label+":", o.err)
			continue
		}
		r := o.res.Report
		status := r.Engine
		if r.Demoted {
			status += " (demoted)"
		}
		if r.Cache != "" && r.Cache != "hit" {
			status += " (" + r.Cache + ")"
		}
		fmt.Printf("  query %-12s ok engine=%s attempts=%d wait=%s run=%s\n",
			specs[i].label+":", status, r.Attempts,
			r.QueueWait.Round(time.Microsecond), r.RunTime.Round(time.Microsecond))
	}
	st := svc.Stats()
	fmt.Printf("queries:         %d ok, %d failed\n", len(specs)-failed, failed)
	fmt.Printf("accounting:      %d admitted = %d completed + %d failed + %d canceled + %d shed; %d rejected\n",
		st.Admitted, st.Completed, st.Failed, st.Canceled, st.Shed, st.Rejected)
	// A single default tenant reproduces the aggregate exactly; only a
	// genuinely multi-tenant run earns the per-tenant breakdown.
	if len(st.Tenants) > 1 {
		for _, tn := range st.Tenants {
			fmt.Printf("  tenant %-12s weight=%d admitted=%d completed=%d failed=%d canceled=%d shed=%d rejected=%d\n",
				tn.Name+":", tn.Weight, tn.Admitted, tn.Completed, tn.Failed,
				tn.Canceled, tn.Shed, tn.Rejected)
		}
	}
	if st.Demotions > 0 {
		fmt.Printf("breaker:         %d demotions, %d probes\n", st.Demotions, st.Probes)
	}
	if st.Cache.MaxBytes > 0 {
		fmt.Printf("cache:           %d hits / %d lookups, %d coalesced, %d batched, %d seeded; %d engine runs\n",
			st.Cache.Hits, st.Cache.Lookups, st.CoalescedQueries, st.BatchedQueries,
			st.SeededQueries, st.EngineRuns)
	}
	if st.Store.MaxBytes > 0 {
		fmt.Printf("store:           %d queries, %d segments, %d/%d bytes; %d writes (%d promoted, %d failed, %d quarantined), %d reclaimed, %d resumes\n",
			st.Store.Queries, st.Store.Segments, st.Store.Bytes, st.Store.MaxBytes,
			st.Store.Writes, st.Store.Promoted, st.Store.Failed,
			st.Store.Quarantined, st.Store.Reclaimed, st.Store.Resumes)
	}

	if reg != nil {
		if err := writeMetrics(opts.metricsPath, reg); err != nil {
			return err
		}
	}
	if closeErr != nil {
		return closeErr
	}
	return firstErr
}
