// Command megasim simulates one evolving-graph query on the MEGA
// accelerator (or the JetStream baseline) and prints timing, memory-system
// and functional statistics.
//
// Usage:
//
//	megasim [-graph PK|LJ|OR|DL|UK|Wen] [-algo SSSP] [-mode boe|ws|dh|jetstream|recompute|eval]
//	        [-snapshots 16] [-batch 0.01] [-onchip 524288] [-load dir]
//	        [-fault SPEC]... [-checkpoint FILE] [-checkpoint-every N] [-resume] [-retries N]
//	        [-state-dir DIR]
//
// By default it runs SSSP over 16 snapshots of the PK stand-in under BOE.
// With -load it consumes a dataset directory written by megagen instead of
// synthesizing one.
//
// Mode "eval" runs the functional query through the fault-tolerant
// evaluator: it checkpoints every -checkpoint-every rounds (persisting
// atomically to -checkpoint when given), retries transient faults from
// the last checkpoint, falls back from the parallel to the sequential
// engine after a worker panic, and with -resume restarts from the
// persisted checkpoint file. -fault injects deterministic faults using
// the "site[#shard]:kind[=latency]@visit[xevery]" grammar, e.g.
// -fault engine.round:transient@100 or -fault parallel.phase#2:panic@7.
//
// -state-dir DIR (eval and serve modes) spools checkpoints into a
// crash-safe durable store keyed by the query's content identity: kill
// the process mid-run, rerun the same command, and the query resumes
// from its last durable checkpoint instead of recomputing (the eval
// report gains a "resumed:" line). Disk-fault sites (store.write,
// store.sync, store.rename, store.dirsync) compose with -fault.
//
// Observability: -metrics FILE writes a JSON snapshot of the run's metric
// families (cache, per-channel DRAM traffic, queue traffic, engine event
// counts) and invariant-audit outcomes. -verify-metrics FILE validates a
// previously written snapshot — required families present (see -require)
// and every audit passed — and exits without simulating.
//
// Mode "serve" runs a batch of concurrent queries through the
// admission-controlled query service (bounded concurrency, priority wait
// queue, load shedding, panic breaker, graceful drain). -queries FILE
// (or "-" for stdin) supplies one query per line as key=value fields:
// algo, source, priority (low|normal|high), deadline, queue-timeout,
// engine (seq|par), workers, label, and repeatable fault specs. -capacity
// and -queue-depth bound the service; -drain bounds the shutdown drain.
//
// Exit codes: 0 success, 1 generic failure, 2 invalid input, 3 canceled
// (signal or -timeout), 4 query divergence, 5 checkpoint corruption or
// mismatch, 6 invariant-audit violation, 7 service overload (admission
// rejection or shed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mega"
)

// Exit codes, also documented in the package comment and README.
const (
	exitOK         = 0
	exitGeneric    = 1
	exitInvalid    = 2
	exitCanceled   = 3
	exitDivergence = 4
	exitCheckpoint = 5
	exitAudit      = 6
	exitOverload   = 7
)

// faultList collects repeatable -fault flags.
type faultList []mega.FaultOp

func (f *faultList) String() string {
	specs := make([]string, len(*f))
	for i, op := range *f {
		specs[i] = op.String()
	}
	return strings.Join(specs, ",")
}

func (f *faultList) Set(spec string) error {
	op, err := mega.ParseFaultOp(spec)
	if err != nil {
		return err
	}
	*f = append(*f, op)
	return nil
}

func main() {
	graphName := flag.String("graph", "PK", "paper stand-in graph name")
	algoName := flag.String("algo", "SSSP", "algorithm: BFS SSSP SSWP SSNP Viterbi")
	mode := flag.String("mode", "boe", "workflow: boe, ws, dh, jetstream, recompute, eval, serve")
	snapshots := flag.Int("snapshots", 16, "snapshot window size")
	batch := flag.Float64("batch", 0.01, "per-hop batch fraction of edges")
	imbalance := flag.Float64("imbalance", 1, "largest/smallest batch ratio")
	onchip := flag.Int64("onchip", 0, "on-chip memory bytes (0 = default)")
	source := flag.Int("source", -1, "source vertex (-1 = highest out-degree)")
	load := flag.String("load", "", "load a megagen dataset directory instead of synthesizing")
	edgeList := flag.String("edgelist", "", "build the window from a SNAP-style edge-list file")
	profile := flag.Bool("profile", false, "print the per-operation timing profile")
	timeout := flag.Duration("timeout", 0, "abort the simulation after this duration (0 = none)")
	engineFlag := flag.String("engine", "seq", "eval engine: seq or par")
	workers := flag.Int("workers", 0, "parallel engine workers (0 = GOMAXPROCS)")
	ckptFile := flag.String("checkpoint", "", "eval: persist checkpoints to this file (atomic rename)")
	ckptEvery := flag.Int("checkpoint-every", 0, "eval: checkpoint every N rounds (0 = default 32)")
	resume := flag.Bool("resume", false, "eval: resume from the -checkpoint file")
	stateDir := flag.String("state-dir", "", "eval/serve: durable checkpoint store directory (crash-safe resume)")
	retries := flag.Int("retries", 0, "eval: max restarts after transient faults (0 = default 3)")
	queries := flag.String("queries", "", "serve: query-spec file, one query per line (- = stdin)")
	capacity := flag.Int("capacity", 0, "serve: max concurrently running queries (0 = default 4)")
	queueDepth := flag.Int("queue-depth", 0, "serve: max queued queries (0 = default 64)")
	cacheBytes := flag.Int64("cache-bytes", 0, "serve: cross-query result cache budget in bytes (0 = disabled)")
	drain := flag.Duration("drain", 0, "serve: graceful-drain deadline at shutdown (0 = 10s)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for probabilistic fault ops")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot (instruments + audits) to this file")
	verifyPath := flag.String("verify-metrics", "", "validate a metrics snapshot file and exit (no simulation)")
	require := flag.String("require", "cache_hits,dram_channel_bytes,queue_pushed,engine_events_processed",
		"comma-separated metric families -verify-metrics must find (empty = audits only)")
	var faults faultList
	flag.Var(&faults, "fault", "inject a deterministic fault (repeatable): site[#shard]:kind[=latency]@visit[xevery]")
	flag.Parse()

	if *verifyPath != "" {
		if err := verifyMetrics(*verifyPath, *require); err != nil {
			exitWith(err)
		}
		fmt.Printf("metrics snapshot %s: ok\n", *verifyPath)
		return
	}

	// SIGINT/SIGTERM cancel the run cooperatively: the engines observe the
	// context at their next round/cycle boundary and unwind cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if len(faults) > 0 {
		plan := mega.NewFaultPlan(*faultSeed)
		for _, op := range faults {
			plan.Add(op)
		}
		ctx = mega.WithFaultPlan(ctx, plan)
	}

	showProfile = *profile
	opts := evalOptions{
		engine: *engineFlag, workers: *workers,
		ckptFile: *ckptFile, ckptEvery: *ckptEvery,
		resume: *resume, retries: *retries,
		stateDir:    *stateDir,
		metricsPath: *metricsPath,
		queries:     *queries,
		capacity:    *capacity, queueDepth: *queueDepth,
		cacheBytes: *cacheBytes,
		drain:      *drain, faultSeed: *faultSeed,
	}
	if err := run(ctx, *graphName, *algoName, *mode, *snapshots, *batch, *imbalance, *onchip, *source, *load, *edgeList, opts); err != nil {
		exitWith(err)
	}
}

// classify maps a typed error to its documented exit code and stderr
// prefix. It is the single source of truth for the exit-code contract;
// the table test in main_test.go keeps it in sync with the megaerr
// sentinels.
func classify(err error) (code int, prefix string) {
	switch {
	case err == nil:
		return exitOK, ""
	case errors.Is(err, mega.ErrInvalidInput):
		return exitInvalid, "invalid input"
	case errors.Is(err, mega.ErrCheckpoint):
		return exitCheckpoint, "checkpoint"
	case errors.Is(err, mega.ErrOverload):
		return exitOverload, "overloaded"
	case errors.Is(err, mega.ErrCanceled):
		return exitCanceled, "canceled"
	case errors.Is(err, mega.ErrDivergence):
		return exitDivergence, "query diverged"
	case errors.Is(err, mega.ErrAudit):
		return exitAudit, "invariant audit failed"
	default:
		return exitGeneric, ""
	}
}

// exitWith maps a typed error to the documented exit codes and terminates.
func exitWith(err error) {
	code, prefix := classify(err)
	if prefix != "" {
		fmt.Fprintf(os.Stderr, "megasim: %s: %v\n", prefix, err)
	} else {
		fmt.Fprintln(os.Stderr, "megasim:", err)
	}
	os.Exit(code)
}

// verifyMetrics validates a snapshot file against the required families.
func verifyMetrics(path, require string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w: reading metrics snapshot: %v", mega.ErrInvalidInput, err)
	}
	var fams []string
	for _, f := range strings.Split(require, ",") {
		if f = strings.TrimSpace(f); f != "" {
			fams = append(fams, f)
		}
	}
	return mega.ValidateMetricsJSON(data, fams...)
}

// writeMetrics snapshots reg to path (atomically, like checkpoints).
func writeMetrics(path string, reg *mega.MetricsRegistry) error {
	var buf strings.Builder
	if err := reg.WriteJSON(&buf); err != nil {
		return err
	}
	return writeFileAtomic(path, []byte(buf.String()))
}

// evalOptions carries the eval- and serve-mode flags through run.
type evalOptions struct {
	engine      string
	workers     int
	ckptFile    string
	ckptEvery   int
	resume      bool
	retries     int
	stateDir    string
	metricsPath string

	// serve-mode knobs.
	queries    string
	capacity   int
	queueDepth int
	cacheBytes int64
	drain      time.Duration
	faultSeed  int64
}

func run(ctx context.Context, graphName, algoName, mode string, snapshots int, batch, imbalance float64, onchip int64, source int, load, edgeList string, opts evalOptions) error {
	kind, err := mega.ParseAlgorithm(algoName)
	if err != nil {
		return err
	}
	var reg *mega.MetricsRegistry
	if opts.metricsPath != "" {
		reg = mega.NewMetricsRegistry()
	}

	var ev *mega.Evolution
	switch {
	case load != "":
		if ev, err = mega.LoadEvolutionContext(ctx, load); err != nil {
			return err
		}
	case edgeList != "":
		n, edges, lerr := mega.LoadEdgeList(edgeList, 1)
		if lerr != nil {
			return lerr
		}
		es := mega.EvolutionSpec{
			Snapshots: snapshots, BatchFraction: batch, Imbalance: imbalance, Seed: 42,
		}
		if ev, err = mega.EvolveFromEdges(n, edges, es); err != nil {
			return err
		}
	default:
		spec, ok := findGraph(graphName)
		if !ok {
			return fmt.Errorf("unknown graph %q", graphName)
		}
		es := mega.EvolutionSpec{
			Snapshots: snapshots, BatchFraction: batch, Imbalance: imbalance, Seed: 42,
		}
		if ev, err = mega.Evolve(spec, es); err != nil {
			return err
		}
	}

	src := mega.VertexID(0)
	if source >= 0 {
		src = mega.VertexID(source)
	} else {
		src = hub(ev)
	}

	var res *mega.SimResult
	switch mode {
	case "eval":
		w, werr := mega.NewWindow(ev)
		if werr != nil {
			return werr
		}
		return runEval(ctx, w, kind, src, opts, reg)
	case "serve":
		w, werr := mega.NewWindow(ev)
		if werr != nil {
			return werr
		}
		return runServe(ctx, w, kind, src, opts, reg)
	case "jetstream":
		cfg := mega.JetStreamSimConfig()
		if onchip > 0 {
			cfg.OnChipBytes = onchip
		}
		res, err = mega.SimulateJetStreamContext(ctx, ev, kind, src, cfg)
	case "recompute":
		w, werr := mega.NewWindow(ev)
		if werr != nil {
			return werr
		}
		cfg := mega.DefaultSimConfig()
		if onchip > 0 {
			cfg.OnChipBytes = onchip
		}
		res, err = mega.SimulateRecomputeContext(ctx, w, kind, src, cfg)
	case "boe-cycle":
		w, werr := mega.NewWindow(ev)
		if werr != nil {
			return werr
		}
		r, uerr := mega.SimulateCycleLevelContext(ctx, w, kind, src, mega.DefaultUarchConfig())
		if uerr != nil {
			return uerr
		}
		fmt.Printf("workflow:        BOE (cycle-level) / %s (source %d)\n", kind, src)
		fmt.Printf("snapshots:       %d\n", len(r.SnapshotValues))
		fmt.Printf("cycles:          %d (%.4f ms @1GHz)\n", r.Cycles, float64(r.Cycles)/1e6)
		fmt.Printf("events:          %d dispatched, %d applied, %d generated, %d coalesced\n",
			r.Events, r.Applied, r.Generated, r.Coalesced)
		fmt.Printf("edge unit:       %d fetches, %d cache hits, %.2f MB DRAM\n",
			r.Fetches, r.CacheHits, mb(r.DRAMBytes))
		fmt.Printf("PE utilization:  %.0f%%, max live events %d\n",
			r.Utilization(mega.DefaultUarchConfig())*100, r.MaxLiveEvents)
		if reg != nil {
			r.RecordMetrics(reg)
			return writeMetrics(opts.metricsPath, reg)
		}
		return nil
	case "jetstream-cycle":
		r, uerr := mega.SimulateStreamCycleLevelContext(ctx, ev, kind, src, mega.DefaultUarchConfig())
		if uerr != nil {
			return uerr
		}
		fmt.Printf("workflow:        JetStream (cycle-level) / %s (source %d)\n", kind, src)
		fmt.Printf("cycles:          %d (%.4f ms @1GHz)\n", r.Cycles, float64(r.Cycles)/1e6)
		fmt.Printf("  deletions:     %d cycles (%.0f%%)\n", r.DelCycles,
			100*float64(r.DelCycles)/float64(r.Cycles))
		fmt.Printf("  additions:     %d cycles\n", r.AddCycles)
		fmt.Printf("events:          %d processed, %d generated\n", r.Events, r.Generated)
		fmt.Printf("edge unit:       %d fetches, %d cache hits, %.2f MB DRAM\n",
			r.Fetches, r.CacheHits, mb(r.DRAMBytes))
		if reg != nil {
			r.RecordMetrics(reg)
			return writeMetrics(opts.metricsPath, reg)
		}
		return nil
	case "boe", "ws", "dh":
		w, werr := mega.NewWindow(ev)
		if werr != nil {
			return werr
		}
		cfg := mega.DefaultSimConfig()
		if onchip > 0 {
			cfg.OnChipBytes = onchip
		}
		m := map[string]mega.ScheduleMode{"boe": mega.BOE, "ws": mega.WorkSharing, "dh": mega.DirectHop}[mode]
		res, err = mega.SimulateContext(ctx, w, kind, src, m, cfg)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return err
	}

	fmt.Printf("workflow:        %s / %s (source %d)\n", res.Workflow, res.Algo, src)
	fmt.Printf("snapshots:       %d\n", len(res.SnapshotValues))
	fmt.Printf("cycles:          %d (%.4f ms @1GHz)\n", res.Cycles, res.TimeMs)
	fmt.Printf("cycles w/ BP:    %d (%.4f ms)\n", res.CyclesBP, res.TimeMsBP)
	fmt.Printf("partitions:      %d\n", res.Partitions)
	fmt.Printf("DRAM traffic:    %.2f MB (spill %.2f MB, bin swap %.2f MB)\n",
		mb(res.DRAMBytes), mb(res.SpillBytes), mb(res.SwapBytes))
	fmt.Printf("edge cache:      %d hits / %d misses\n", res.CacheHits, res.CacheMiss)
	fmt.Printf("events:          %d processed, %d applied, %d generated\n",
		res.Counts.Events, res.Counts.Applied, res.Counts.GeneratedEvents)
	fmt.Printf("edges read:      %d (+%d reused by concurrent snapshots)\n",
		res.Counts.EdgesRead, res.Counts.SharedEdges)
	fmt.Printf("rounds:          %d\n", res.Counts.Rounds)
	if showProfile {
		fmt.Printf("\n%-10s %6s %9s %9s %9s %9s\n", "op", "batch", "contexts", "rounds", "events", "cycles")
		for _, p := range res.OpProfiles {
			fmt.Printf("%-10s %6d %9d %9d %9d %9d\n",
				p.Kind, p.BatchEdges, p.Contexts, p.Rounds, p.Events, p.Cycles)
		}
	}
	if reg != nil {
		res.RecordMetrics(reg)
		return writeMetrics(opts.metricsPath, reg)
	}
	return nil
}

// runEval answers the query through the fault-tolerant evaluator and
// prints a recovery report alongside a functional summary.
func runEval(ctx context.Context, w *mega.Window, kind mega.AlgorithmKind, src mega.VertexID, opts evalOptions, reg *mega.MetricsRegistry) (retErr error) {
	ropt := mega.RecoverOptions{
		Parallel:        opts.engine == "par",
		Workers:         opts.workers,
		CheckpointEvery: opts.ckptEvery,
		MaxRetries:      opts.retries,
		Metrics:         reg,
	}
	switch opts.engine {
	case "seq", "par":
	default:
		return fmt.Errorf("%w: unknown engine %q (want seq or par)", mega.ErrInvalidInput, opts.engine)
	}
	if opts.ckptFile != "" {
		ropt.Sink = func(b []byte) error { return writeFileAtomic(opts.ckptFile, b) }
	}
	if opts.resume {
		if opts.ckptFile == "" {
			return fmt.Errorf("%w: -resume requires -checkpoint FILE", mega.ErrInvalidInput)
		}
		data, rerr := os.ReadFile(opts.ckptFile)
		if rerr != nil {
			return fmt.Errorf("%w: reading resume file: %v", mega.ErrCheckpoint, rerr)
		}
		ropt.Checkpoint = data
	}
	var store *mega.CheckpointStore
	if opts.stateDir != "" {
		var serr error
		store, serr = mega.OpenCheckpointStore(mega.CheckpointStoreConfig{
			Dir:     opts.stateDir,
			Faults:  mega.FaultPlanFromContext(ctx),
			Metrics: reg,
		})
		if serr != nil {
			return serr
		}
		id, ierr := mega.CheckpointIDFor(w, kind, src, "")
		if ierr != nil {
			store.Close()
			return ierr
		}
		ropt.Store = store
		ropt.StoreID = id
		// Close after the evaluation; the store audit (strict under
		// MEGA_CHAOS) joins the run's own error so a books violation
		// surfaces as exit code 6 even when the query itself succeeded.
		defer func() {
			if cerr := store.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
	}

	values, rec, err := mega.EvaluateRecover(ctx, w, kind, src, mega.BOE, ropt)
	engineName := map[bool]string{false: "sequential", true: "parallel"}[ropt.Parallel]
	fmt.Printf("workflow:        eval (%s engine) / %s (source %d)\n", engineName, kind, src)
	fmt.Printf("attempts:        %d (%d resumed from checkpoint)\n", rec.Attempts, rec.Resumes)
	if rec.DurableResume {
		fmt.Printf("resumed:         true (durable checkpoint from %s)\n", opts.stateDir)
	}
	if rec.FellBack {
		fmt.Printf("fallback:        worker panic demoted the run to the sequential engine\n")
	}
	for _, f := range rec.Faults {
		fmt.Printf("survived fault:  %s\n", f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("snapshots:       %d\n", len(values))
	identity := mega.NewAlgorithm(kind).Identity()
	for s, vals := range values {
		reached := 0
		for _, v := range vals {
			if v != identity {
				reached++
			}
		}
		fmt.Printf("  snapshot %2d:   %d/%d vertices reached\n", s, reached, len(vals))
	}
	if reg != nil {
		return writeMetrics(opts.metricsPath, reg)
	}
	return nil
}

// writeFileAtomic persists b so that a crash mid-write never leaves a
// truncated checkpoint. It delegates to the store's shared publish helper
// (temp write, fsync, rename, parent-directory fsync — the last step is
// what makes the rename itself durable across a crash).
func writeFileAtomic(path string, b []byte) error {
	return mega.AtomicWriteFile(path, b)
}

// showProfile is set by the -profile flag.
var showProfile bool

func findGraph(name string) (mega.GraphSpec, bool) {
	for _, s := range mega.PaperGraphs() {
		if s.Name == name {
			return s, true
		}
	}
	return mega.GraphSpec{}, false
}

func hub(ev *mega.Evolution) mega.VertexID {
	deg := make([]int, ev.NumVertices)
	best := 0
	for _, e := range ev.Initial {
		deg[e.Src]++
		if deg[e.Src] > deg[best] {
			best = int(e.Src)
		}
	}
	return mega.VertexID(best)
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
