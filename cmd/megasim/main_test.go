package main

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mega"
)

// TestClassifyExitCodes pins the full exit-code contract — one row per
// documented code — so the mapping cannot drift from the megaerr
// sentinels without this table noticing.
func TestClassifyExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code int
	}{
		{"success", nil, exitOK},
		{"generic", errors.New("unclassified failure"), exitGeneric},
		{"invalid", fmt.Errorf("bad flag: %w", mega.ErrInvalidInput), exitInvalid},
		{"canceled-sentinel", fmt.Errorf("stopped: %w", mega.ErrCanceled), exitCanceled},
		{"canceled-typed", &mega.CanceledError{Phase: "round 3", Err: context.Canceled}, exitCanceled},
		{"divergence", fmt.Errorf("runaway: %w", mega.ErrDivergence), exitDivergence},
		{"checkpoint", fmt.Errorf("corrupt: %w", mega.ErrCheckpoint), exitCheckpoint},
		{"audit", fmt.Errorf("violated: %w", mega.ErrAudit), exitAudit},
		{"overload-sentinel", fmt.Errorf("full: %w", mega.ErrOverload), exitOverload},
		{"overload-typed", &mega.OverloadError{Reason: "queue full", Capacity: 4, Queued: 64}, exitOverload},
		// A worker panic is contained into a generic failure unless the
		// retry loop re-types it.
		{"worker-panic", &mega.WorkerPanicError{Shard: 2, Value: "boom"}, exitGeneric},
	}
	seen := map[int]bool{}
	for _, c := range cases {
		code, _ := classify(c.err)
		if code != c.code {
			t.Errorf("classify(%s) = %d, want %d", c.name, code, c.code)
		}
		seen[c.code] = true
	}
	// Every documented code must be exercised by at least one row.
	for code := exitOK; code <= exitOverload; code++ {
		if !seen[code] {
			t.Errorf("exit code %d has no covering table row", code)
		}
	}
}

// TestParseQuerySpec pins the serve-mode query line grammar.
func TestParseQuerySpec(t *testing.T) {
	defaults := querySpec{req: mega.QueryRequest{Algo: mega.SSSP, Source: 3}}
	spec, err := parseQuerySpec(
		"algo=SSWP source=7 priority=high deadline=2s queue-timeout=150ms engine=par workers=3 label=q7 fault=engine.round:transient@5",
		defaults, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := spec.req
	if r.Algo != mega.SSWP || r.Source != 7 || r.Priority != mega.QueryPriorityHigh {
		t.Errorf("parsed request = %+v, want SSWP from 7 at high priority", r)
	}
	if r.Deadline != 2*time.Second || r.QueueTimeout != 150*time.Millisecond {
		t.Errorf("timeouts = %v/%v, want 2s/150ms", r.Deadline, r.QueueTimeout)
	}
	if !r.Parallel || r.Workers != 3 || spec.label != "q7" {
		t.Errorf("engine/label = %+v %q, want par/3/q7", r, spec.label)
	}
	if spec.plan == nil {
		t.Error("fault= did not build a plan")
	}

	// Defaults flow through untouched fields.
	spec, err = parseQuerySpec("priority=low", defaults, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spec.req.Algo != mega.SSSP || spec.req.Source != 3 || spec.req.Priority != mega.QueryPriorityLow {
		t.Errorf("defaulted request = %+v, want the defaults with low priority", spec.req)
	}

	// Malformed lines are invalid input.
	for _, bad := range []string{
		"nonsense",
		"engine=gpu",
		"priority=urgent",
		"deadline=fast",
		"source=-2",
		"bogus=1",
	} {
		if _, err := parseQuerySpec(bad, defaults, 1); !errors.Is(err, mega.ErrInvalidInput) {
			t.Errorf("parseQuerySpec(%q) = %v, want ErrInvalidInput", bad, err)
		}
	}
}
