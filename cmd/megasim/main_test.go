package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mega"
)

// TestClassifyExitCodes pins the full exit-code contract — one row per
// documented code — so the mapping cannot drift from the megaerr
// sentinels without this table noticing.
func TestClassifyExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		code int
	}{
		{"success", nil, exitOK},
		{"generic", errors.New("unclassified failure"), exitGeneric},
		{"invalid", fmt.Errorf("bad flag: %w", mega.ErrInvalidInput), exitInvalid},
		{"canceled-sentinel", fmt.Errorf("stopped: %w", mega.ErrCanceled), exitCanceled},
		{"canceled-typed", &mega.CanceledError{Phase: "round 3", Err: context.Canceled}, exitCanceled},
		{"divergence", fmt.Errorf("runaway: %w", mega.ErrDivergence), exitDivergence},
		{"checkpoint", fmt.Errorf("corrupt: %w", mega.ErrCheckpoint), exitCheckpoint},
		{"audit", fmt.Errorf("violated: %w", mega.ErrAudit), exitAudit},
		{"overload-sentinel", fmt.Errorf("full: %w", mega.ErrOverload), exitOverload},
		{"overload-typed", &mega.OverloadError{Reason: "queue full", Capacity: 4, Queued: 64}, exitOverload},
		// A worker panic is contained into a generic failure unless the
		// retry loop re-types it.
		{"worker-panic", &mega.WorkerPanicError{Shard: 2, Value: "boom"}, exitGeneric},
	}
	seen := map[int]bool{}
	for _, c := range cases {
		code, _ := classify(c.err)
		if code != c.code {
			t.Errorf("classify(%s) = %d, want %d", c.name, code, c.code)
		}
		seen[c.code] = true
	}
	// Every documented code must be exercised by at least one row.
	for code := exitOK; code <= exitOverload; code++ {
		if !seen[code] {
			t.Errorf("exit code %d has no covering table row", code)
		}
	}
}

// TestParseQuerySpec pins the serve-mode query line grammar.
func TestParseQuerySpec(t *testing.T) {
	defaults := querySpec{req: mega.QueryRequest{Algo: mega.SSSP, Source: 3}}
	spec, err := parseQuerySpec(
		"algo=SSWP source=7 priority=high deadline=2s queue-timeout=150ms engine=par workers=3 label=q7 tenant=team-a fault=engine.round:transient@5",
		defaults, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := spec.req
	if r.Algo != mega.SSWP || r.Source != 7 || r.Priority != mega.QueryPriorityHigh {
		t.Errorf("parsed request = %+v, want SSWP from 7 at high priority", r)
	}
	if r.Deadline != 2*time.Second || r.QueueTimeout != 150*time.Millisecond {
		t.Errorf("timeouts = %v/%v, want 2s/150ms", r.Deadline, r.QueueTimeout)
	}
	if !r.Parallel || r.Workers != 3 || spec.label != "q7" {
		t.Errorf("engine/label = %+v %q, want par/3/q7", r, spec.label)
	}
	if spec.plan == nil {
		t.Error("fault= did not build a plan")
	}
	if spec.req.Tenant != "team-a" {
		t.Errorf("tenant = %q, want team-a", spec.req.Tenant)
	}

	// Defaults flow through untouched fields; no tenant key means the
	// default tenant (empty), exactly as before tenancy existed.
	spec, err = parseQuerySpec("priority=low", defaults, 1)
	if err != nil {
		t.Fatal(err)
	}
	if spec.req.Algo != mega.SSSP || spec.req.Source != 3 || spec.req.Priority != mega.QueryPriorityLow {
		t.Errorf("defaulted request = %+v, want the defaults with low priority", spec.req)
	}
	if spec.req.Tenant != "" {
		t.Errorf("tenant defaulted to %q, want empty", spec.req.Tenant)
	}

	// Malformed lines are invalid input.
	for _, bad := range []string{
		"nonsense",
		"engine=gpu",
		"priority=urgent",
		"deadline=fast",
		"source=-2",
		"bogus=1",
		"tenant=a:b",
		"tenant=has space",
	} {
		if _, err := parseQuerySpec(bad, defaults, 1); !errors.Is(err, mega.ErrInvalidInput) {
			t.Errorf("parseQuerySpec(%q) = %v, want ErrInvalidInput", bad, err)
		}
	}
}

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	ferr := f()
	w.Close()
	out, rerr := io.ReadAll(r)
	if rerr != nil {
		t.Fatal(rerr)
	}
	return string(out), ferr
}

// TestRunServeTenantBackCompat is the tenancy regression gate for the
// batch front end: a pre-tenancy queries file (no tenant keys) still
// succeeds with the single-tenant report shape — no per-tenant lines —
// while the same batch tagged with tenants earns the breakdown.
func TestRunServeTenantBackCompat(t *testing.T) {
	ev, err := mega.Evolve(
		mega.GraphSpec{Name: "T", Vertices: 64, Edges: 256, A: 0.45, B: 0.15, C: 0.15, MaxWeight: 8, Seed: 1},
		mega.EvolutionSpec{Snapshots: 3, BatchFraction: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	runBatch := func(lines string) (string, error) {
		path := filepath.Join(t.TempDir(), "queries")
		if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
			t.Fatal(err)
		}
		return captureStdout(t, func() error {
			return runServe(context.Background(), w, mega.BFS, 0,
				evalOptions{queries: path, capacity: 2, queueDepth: 8, drain: 5 * time.Second}, nil)
		})
	}

	legacy, err := runBatch("algo=BFS source=0\nalgo=SSSP source=1 priority=high\n")
	if err != nil {
		t.Fatalf("legacy batch failed: %v", err)
	}
	if !strings.Contains(legacy, "2 ok, 0 failed") || strings.Contains(legacy, "tenant ") {
		t.Errorf("legacy output changed:\n%s", legacy)
	}

	tagged, err := runBatch("algo=BFS source=0 tenant=team-a\nalgo=SSSP source=1 tenant=team-b\n")
	if err != nil {
		t.Fatalf("tagged batch failed: %v", err)
	}
	if !strings.Contains(tagged, "tenant team-a:") || !strings.Contains(tagged, "tenant team-b:") {
		t.Errorf("tagged output missing per-tenant breakdown:\n%s", tagged)
	}
}
