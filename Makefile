# Developer entry points. `make ci` is the full gate: vet, build, the
# race-enabled test suite, and a short run of every fuzz target.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test vet race fuzz audit chaos bench-smoke bench-json ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target needs its own `go test -fuzz` invocation (the tool
# fuzzes one target per run).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLoadEdgeList -fuzztime=$(FUZZTIME) ./internal/gen/
	$(GO) test -run='^$$' -fuzz=FuzzNewWindowFromParts -fuzztime=$(FUZZTIME) ./internal/evolve/
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointDecode -fuzztime=$(FUZZTIME) ./internal/engine/

# Invariant-audit sweep: every audit-tagged test (conservation laws,
# stale-size regressions, attribution properties) across the layers that
# record audits, with strict mode forced on.
audit:
	MEGA_AUDIT=1 $(GO) test -race -run 'Audit|Attribution|StatsMatchMetrics|Conservation' \
		./internal/metrics/ ./internal/engine/ ./internal/sim/ ./internal/uarch/

# Crash-equivalence chaos sweep: kill the run at every round boundary,
# resume from the last checkpoint, and demand bit-identical results, for
# both engines and all three schedule modes, under the race detector.
# Audits run strict inside the sweep (MEGA_CHAOS implies strict mode),
# so every resumed run also re-proves the conservation laws.
chaos:
	MEGA_CHAOS=full $(GO) test -race -run 'CrashEquivalence|Audit|Attribution' \
		./internal/engine/ ./internal/sim/ ./internal/uarch/

# Compile and execute every benchmark for a single iteration — catches
# benchmarks that no longer build or crash, without measuring anything.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate BENCH_parallel.json with freshly measured numbers.
bench-json:
	$(GO) run ./cmd/megabench -perf -v -perfout BENCH_parallel.json

ci: vet build race bench-smoke audit chaos fuzz
