# Developer entry points. `make ci` is the full gate: vet, build, the
# race-enabled test suite, and a short run of every fuzz target.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test vet fmt race fuzz audit chaos crash soak serve-soak bench-smoke bench-json ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting gate: fails listing any file gofmt would rewrite.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target needs its own `go test -fuzz` invocation (the tool
# fuzzes one target per run).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLoadEdgeList -fuzztime=$(FUZZTIME) ./internal/gen/
	$(GO) test -run='^$$' -fuzz=FuzzNewWindowFromParts -fuzztime=$(FUZZTIME) ./internal/evolve/
	$(GO) test -run='^$$' -fuzz=FuzzCheckpointDecode -fuzztime=$(FUZZTIME) ./internal/engine/
	$(GO) test -run='^$$' -fuzz=FuzzParseTenantSpec -fuzztime=$(FUZZTIME) ./internal/serve/
	$(GO) test -run='^$$' -fuzz=FuzzManifestDecode -fuzztime=$(FUZZTIME) ./internal/ckptstore/

# Invariant-audit sweep: every audit-tagged test (conservation laws,
# stale-size regressions, attribution properties) across the layers that
# record audits, with strict mode forced on.
audit:
	MEGA_AUDIT=1 $(GO) test -race -run 'Audit|Attribution|StatsMatchMetrics|Conservation' \
		./internal/metrics/ ./internal/engine/ ./internal/sim/ ./internal/uarch/

# Crash-equivalence chaos sweep: kill the run at every round boundary,
# resume from the last checkpoint, and demand bit-identical results, for
# both engines and all three schedule modes, under the race detector.
# Audits run strict inside the sweep (MEGA_CHAOS implies strict mode),
# so every resumed run also re-proves the conservation laws.
chaos:
	MEGA_CHAOS=full $(GO) test -race -run 'CrashEquivalence|Audit|Attribution' \
		./internal/engine/ ./internal/sim/ ./internal/uarch/

# Disk-fault chaos: the durable checkpoint store under injected crashes
# and disk faults — a process "dies" at every store.write / store.rename
# protocol boundary and restarts against the same state directory, with
# resumed results bit-identical to an uninterrupted run; segments are
# torn (truncated and bit-flipped) at every byte offset and must be
# quarantined with the previous generation served instead; and the query
# service restarts over a crashed predecessor's state dir and re-admits
# its orphans. MEGA_CHAOS widens the sweep to every boundary and forces
# the store's Close-time accounting audit strict.
crash:
	MEGA_CHAOS=full $(GO) test -race -run 'Durable|ServeRecoverOrphans|TornSegment|CrashResidue|Quarantine' \
		. ./internal/ckptstore/

# Query-service soak: hundreds of concurrent mixed-priority queries with
# injected transients, worker panics, and latency spikes, under the race
# detector. MEGA_CHAOS scales the query count up and forces strict audits,
# so the Close-time accounting conservation law — per tenant and in
# aggregate — fails loudly. Includes the tenant-isolation soak: one
# tenant floods with chaos queries while the well-behaved tenant must
# keep its goodput.
soak:
	MEGA_CHAOS=soak $(GO) test -race -run 'QueryService|Serve|Tenant' . ./internal/serve/

# HTTP front-end soak: the same chaos classes driven over loopback HTTP —
# concurrent queries through megaserve's handler stack with injected
# faults and a graceful drain fired mid-flight, under the race detector.
# Asserts no request is lost, results stay bit-identical, accounting is
# conserved, and shutdown leaks no goroutines.
serve-soak:
	MEGA_CHAOS=soak $(GO) test -race -run 'HTTPFront' .
	MEGA_CHAOS=soak $(GO) test -race ./internal/httpfront/

# Compile and execute every benchmark for a single iteration — catches
# benchmarks that no longer build or crash, without measuring anything.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate BENCH_parallel.json with freshly measured numbers.
bench-json:
	$(GO) run ./cmd/megabench -perf -v -perfout BENCH_parallel.json

ci: fmt vet build race bench-smoke audit chaos crash soak serve-soak fuzz
