package mega

import (
	"mega/internal/megaerr"
	"mega/internal/metrics"
)

// Observability surface (internal/metrics re-exported). A MetricsRegistry
// collects the counters, gauges, and histograms every layer of the
// reproduction emits — engine queue traffic, cache and DRAM-channel
// behaviour, parallel-phase wall time, recovery retries — together with
// the named invariant audits (conservation laws) those layers check at op
// and run boundaries. Snapshots are deterministic and JSON-serializable;
// see `megasim -metrics` and DESIGN.md §10 for the metric taxonomy.
type (
	// MetricsRegistry holds one run's instruments and audits.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time JSON-serializable registry view.
	MetricsSnapshot = metrics.Snapshot
	// AuditResult is the recorded outcome of one invariant audit.
	AuditResult = metrics.AuditResult
	// AuditError carries the name and detail of a violated invariant.
	AuditError = megaerr.AuditError
)

// ErrAudit marks invariant-audit violations; test for it with
// errors.Is(err, mega.ErrAudit).
var ErrAudit = megaerr.ErrAudit

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// ValidateMetricsJSON parses data as a metrics snapshot and checks that
// every required family is present and no recorded audit failed. It
// returns an ErrInvalidInput error for malformed or incomplete snapshots
// and an ErrAudit error for failed audits.
func ValidateMetricsJSON(data []byte, requiredFamilies ...string) error {
	return metrics.ValidateSnapshotJSON(data, requiredFamilies...)
}

// StrictAudits reports whether invariant audits are running always-on
// (true inside `go test` binaries and under MEGA_CHAOS/MEGA_AUDIT); in
// strict mode a violated invariant fails the run with an ErrAudit error
// instead of only being recorded in snapshots.
func StrictAudits() bool { return metrics.Strict() }
