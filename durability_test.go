package mega_test

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"mega"
	"mega/internal/fault"
)

// openStore opens a durable checkpoint store for tests, failing fast.
func openStore(t *testing.T, cfg mega.CheckpointStoreConfig) *mega.CheckpointStore {
	t.Helper()
	s, err := mega.OpenCheckpointStore(cfg)
	if err != nil {
		t.Fatalf("OpenCheckpointStore: %v", err)
	}
	return s
}

// TestDurableCrashEquivalenceSweep is the headline chaos suite: crash the
// process (an injected panic that unwinds the sequential engine
// terminally) at checkpoint-store protocol boundaries, restart against
// the same state directory, and require the resumed run's values to be
// identical to an uninterrupted run and the reopened store's books to
// audit clean. Under MEGA_CHAOS every store.write and store.rename visit
// is swept; the default run takes a three-point subset of each.
func TestDurableCrashEquivalenceSweep(t *testing.T) {
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	instantBackoff(t)
	ropt := func(s *mega.CheckpointStore, id mega.CheckpointQueryID) mega.RecoverOptions {
		return mega.RecoverOptions{CheckpointEvery: 4, Store: s, StoreID: id}
	}
	id, err := mega.CheckpointIDFor(w, mega.SSSP, 0, "")
	if err != nil {
		t.Fatal(err)
	}

	// Instrumented clean run: count each store site's visits so the sweep
	// can place a crash at every protocol boundary the run crosses.
	counter := mega.NewFaultPlan(1)
	{
		s := openStore(t, mega.CheckpointStoreConfig{Dir: t.TempDir(), Faults: counter})
		if _, _, err := mega.EvaluateRecover(context.Background(), w, mega.SSSP, 0, mega.BOE, ropt(s, id)); err != nil {
			t.Fatalf("instrumented clean run: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("instrumented store Close: %v", err)
		}
	}

	for _, site := range []string{"store.write", "store.rename"} {
		visits := counter.Visits(fault.Site(site), -1)
		if visits < 2 {
			t.Fatalf("clean run crossed only %d %s boundaries; window too small for the sweep", visits, site)
		}
		sweep := []uint64{1, visits/2 + 1, visits}
		if os.Getenv("MEGA_CHAOS") != "" {
			sweep = sweep[:0]
			for v := uint64(1); v <= visits; v++ {
				sweep = append(sweep, v)
			}
		}
		for _, visit := range sweep {
			t.Run(site+"@"+itoa(visit), func(t *testing.T) {
				dir := t.TempDir()
				op, err := mega.ParseFaultOp(site + ":panic@" + itoa(visit))
				if err != nil {
					t.Fatal(err)
				}
				crashed := openStore(t, mega.CheckpointStoreConfig{
					Dir:    dir,
					Faults: mega.NewFaultPlan(2).Add(op),
				})
				// The injected panic unwinds the sequential engine as a
				// worker panic — a terminal failure, our stand-in for the
				// process dying mid-protocol. The store is deliberately
				// abandoned without Close, like a dead process's would be.
				if _, _, err := mega.EvaluateRecover(context.Background(), w, mega.SSSP, 0, mega.BOE, ropt(crashed, id)); err == nil {
					t.Fatalf("crash at %s visit %d did not kill the run", site, visit)
				}

				// Restart: a fresh store on the same directory adopts the
				// wreckage; the rerun resumes from the last durable
				// generation and must match the uninterrupted run exactly.
				reopened := openStore(t, mega.CheckpointStoreConfig{Dir: dir})
				hadCheckpoint := len(reopened.Entries()) > 0
				got, rec, err := mega.EvaluateRecover(context.Background(), w, mega.SSSP, 0, mega.BOE, ropt(reopened, id))
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}
				if hadCheckpoint && !rec.DurableResume {
					t.Fatalf("store held a checkpoint but the rerun did not durably resume: %+v", rec)
				}
				sameValues(t, clean, got)
				if n := len(reopened.Entries()); n != 0 {
					t.Fatalf("%d store entries survived the successful rerun", n)
				}
				if err := reopened.Close(); err != nil {
					t.Fatalf("reopened store failed its accounting audit: %v", err)
				}
			})
		}
	}
}

// TestDurableResumeAfterTerminalFailure kills a query mid-run with an
// injected engine panic (terminal for the sequential engine), then reruns
// it against the same store: the second run must resume from the durable
// checkpoint, match a clean run, and delete the entry on success.
func TestDurableResumeAfterTerminalFailure(t *testing.T) {
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	kill := countRounds(t, w) / 2
	instantBackoff(t)

	store := openStore(t, mega.CheckpointStoreConfig{Dir: t.TempDir()})
	id, err := mega.CheckpointIDFor(w, mega.SSSP, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	ropt := mega.RecoverOptions{CheckpointEvery: 1, Store: store, StoreID: id}

	op, err := mega.ParseFaultOp("engine.round:panic@" + itoa(kill))
	if err != nil {
		t.Fatal(err)
	}
	ctx := mega.WithFaultPlan(context.Background(), mega.NewFaultPlan(3).Add(op))
	if _, _, err := mega.EvaluateRecover(ctx, w, mega.SSSP, 0, mega.BOE, ropt); err == nil {
		t.Fatal("the injected mid-run panic did not fail the query")
	}
	if n := len(store.Entries()); n != 1 {
		t.Fatalf("store holds %d entries after the crash, want the orphaned query", n)
	}

	got, rec, err := mega.EvaluateRecover(context.Background(), w, mega.SSSP, 0, mega.BOE, ropt)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !rec.DurableResume {
		t.Fatalf("rerun did not resume durably: %+v", rec)
	}
	sameValues(t, clean, got)
	if st := store.Stats(); st.Resumes != 1 || st.Queries != 0 {
		t.Fatalf("store stats after resumed success: %+v", st)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("store Close: %v", err)
	}
}

// TestDurableStoreQuarantineRestartsFresh plants a store checkpoint that
// passes the CRC gate but is not an engine checkpoint: the evaluator must
// quarantine it and restart fresh rather than fail the query.
func TestDurableStoreQuarantineRestartsFresh(t *testing.T) {
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	instantBackoff(t)

	store := openStore(t, mega.CheckpointStoreConfig{Dir: t.TempDir()})
	id, err := mega.CheckpointIDFor(w, mega.SSSP, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Write(id, []byte("valid CRC, not an engine checkpoint")); err != nil {
		t.Fatal(err)
	}

	got, rec, err := mega.EvaluateRecover(context.Background(), w, mega.SSSP, 0, mega.BOE,
		mega.RecoverOptions{CheckpointEvery: 8, Store: store, StoreID: id})
	if err != nil {
		t.Fatalf("EvaluateRecover = %v, want quarantine-then-fresh-restart", err)
	}
	if rec.DurableResume {
		t.Fatal("a rejected checkpoint must not count as a durable resume")
	}
	if len(rec.Faults) == 0 {
		t.Fatalf("the rejected checkpoint left no trace in rec.Faults: %+v", rec)
	}
	sameValues(t, clean, got)
	if st := store.Stats(); st.Quarantined == 0 {
		t.Fatalf("store never quarantined the bad checkpoint: %+v", st)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("store Close: %v", err)
	}
}

// TestDurableFlakyDiskComposesWithRetry injects failing fsync/rename/
// dir-sync at the store seam: the spool write fails transiently, the
// recovery loop retries, and the query still completes with values
// identical to a clean run.
func TestDurableFlakyDiskComposesWithRetry(t *testing.T) {
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range []string{"store.sync", "store.rename", "store.dirsync"} {
		t.Run(site, func(t *testing.T) {
			instantBackoff(t)
			op, err := mega.ParseFaultOp(site + ":transient@2")
			if err != nil {
				t.Fatal(err)
			}
			store := openStore(t, mega.CheckpointStoreConfig{
				Dir:    t.TempDir(),
				Faults: mega.NewFaultPlan(4).Add(op),
			})
			id, err := mega.CheckpointIDFor(w, mega.SSSP, 0, "")
			if err != nil {
				t.Fatal(err)
			}
			got, rec, err := mega.EvaluateRecover(context.Background(), w, mega.SSSP, 0, mega.BOE,
				mega.RecoverOptions{CheckpointEvery: 4, Store: store, StoreID: id})
			if err != nil {
				t.Fatalf("EvaluateRecover = %v, want retry past the flaky disk", err)
			}
			if rec.Attempts < 2 {
				t.Fatalf("attempts = %d, want a retry after the disk fault", rec.Attempts)
			}
			sameValues(t, clean, got)
			if err := store.Close(); err != nil {
				t.Fatalf("store Close: %v", err)
			}
		})
	}
}

// TestServeDurableRestartResume is the service-level restart story: a
// query dies mid-run, the service (and its store) shut down, and a new
// service over the same state directory answers the re-submitted query by
// resuming — Report.Resumed set, values identical to a clean run.
func TestServeDurableRestartResume(t *testing.T) {
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	kill := countRounds(t, w) / 2
	instantBackoff(t)
	dir := t.TempDir()
	req := mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: 0}

	svc1, err := mega.NewQueryService(mega.ServeOptions{
		CheckpointEvery: 1,
		Store:           openStore(t, mega.CheckpointStoreConfig{Dir: dir}),
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err := mega.ParseFaultOp("engine.round:panic@" + itoa(kill))
	if err != nil {
		t.Fatal(err)
	}
	ctx := mega.WithFaultPlan(context.Background(), mega.NewFaultPlan(5).Add(op))
	if _, err := svc1.Submit(ctx, req); err == nil {
		t.Fatal("the injected mid-run panic did not fail the query")
	}
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc1.Close(cctx); err != nil {
		t.Fatalf("svc1 Close: %v", err)
	}

	svc2, err := mega.NewQueryService(mega.ServeOptions{
		CheckpointEvery: 1,
		Store:           openStore(t, mega.CheckpointStoreConfig{Dir: dir}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc2.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("resubmit after restart: %v", err)
	}
	if !res.Report.Resumed {
		t.Fatalf("report = %+v, want Resumed=true", res.Report)
	}
	sameValues(t, clean, res.Values)
	st := svc2.Stats()
	if st.Store.Resumes != 1 || st.Store.Queries != 0 {
		t.Fatalf("store stats after resumed success: %+v", st.Store)
	}
	if err := svc2.Close(cctx); err != nil {
		t.Fatalf("svc2 Close: %v", err)
	}
}

// TestServeRecoverOrphans checks cold-start recovery: the restarted
// service re-admits the orphaned query itself, runs it to completion in
// the background, and clears the store entry.
func TestServeRecoverOrphans(t *testing.T) {
	w := eightSnapshotWindow(t)
	kill := countRounds(t, w) / 2
	instantBackoff(t)
	dir := t.TempDir()
	req := mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: 0, Tenant: "team-a"}

	svc1, err := mega.NewQueryService(mega.ServeOptions{
		CheckpointEvery: 1,
		Store:           openStore(t, mega.CheckpointStoreConfig{Dir: dir}),
	})
	if err != nil {
		t.Fatal(err)
	}
	op, err := mega.ParseFaultOp("engine.round:panic@" + itoa(kill))
	if err != nil {
		t.Fatal(err)
	}
	ctx := mega.WithFaultPlan(context.Background(), mega.NewFaultPlan(6).Add(op))
	if _, err := svc1.Submit(ctx, req); err == nil {
		t.Fatal("the injected mid-run panic did not fail the query")
	}
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc1.Close(cctx); err != nil {
		t.Fatalf("svc1 Close: %v", err)
	}

	svc2, err := mega.NewQueryService(mega.ServeOptions{
		CheckpointEvery: 1,
		Store:           openStore(t, mega.CheckpointStoreConfig{Dir: dir}),
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := svc2.RecoverOrphans(context.Background(), w)
	if err != nil || n != 1 {
		t.Fatalf("RecoverOrphans = (%d, %v), want (1, nil)", n, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := svc2.Stats()
		if st.Completed >= 1 {
			if st.Store.Resumes < 1 || st.Store.Queries != 0 {
				t.Fatalf("store stats after orphan recovery: %+v", st.Store)
			}
			// The orphan ran under its original tenant's accounting.
			found := false
			for _, tn := range st.Tenants {
				if tn.Name == "team-a" && tn.Completed == 1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("orphan not billed to its original tenant: %+v", st.Tenants)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphan never completed: %+v", svc2.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := svc2.Close(cctx); err != nil {
		t.Fatalf("svc2 Close: %v", err)
	}
}

// TestQuarantinedCheckpointErrorContract pins the satellite megaerr
// change: Quarantined surfaces in the message, the error still matches
// ErrCheckpoint (exit-code tables are untouched), and the plain message
// stays byte-stable.
func TestQuarantinedCheckpointErrorContract(t *testing.T) {
	plain := &mega.CheckpointError{Reason: "r"}
	if plain.Error() != "mega: bad checkpoint: r" {
		t.Fatalf("plain message changed: %q", plain.Error())
	}
	q := &mega.CheckpointError{Reason: "r", Quarantined: true}
	if q.Error() != "mega: bad checkpoint (quarantined): r" {
		t.Fatalf("quarantined message: %q", q.Error())
	}
	if !errors.Is(q, mega.ErrCheckpoint) {
		t.Fatal("quarantined error no longer matches ErrCheckpoint")
	}
}
