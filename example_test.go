package mega_test

import (
	"fmt"

	"mega"
)

// Evaluate a query over every snapshot of a small hand-built window.
func ExampleEvaluate() {
	// G_0 is a chain 0→1→2; the single hop adds a shortcut 0→2.
	initial := mega.EdgeList{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
	}.Normalize()
	adds := []mega.EdgeList{{{Src: 0, Dst: 2, Weight: 1}}}
	dels := []mega.EdgeList{nil}

	w, err := mega.NewWindowFromParts(3, 2, initial, adds, dels)
	if err != nil {
		panic(err)
	}
	values, err := mega.Evaluate(w, mega.BFS, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hops to vertex 2: snapshot 0 = %g, snapshot 1 = %g\n",
		values[0][2], values[1][2])
	// Output: hops to vertex 2: snapshot 0 = 2, snapshot 1 = 1
}

// Solve a static single-source shortest-path query.
func ExampleSolve() {
	g, err := mega.NewGraph(4, []mega.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 2, Dst: 1, Weight: 1},
		{Src: 1, Dst: 3, Weight: 1},
	})
	if err != nil {
		panic(err)
	}
	dist := mega.Solve(g, mega.SSSP, 0, nil)
	fmt.Printf("dist(1)=%g dist(3)=%g\n", dist[1], dist[3])
	// Output: dist(1)=2 dist(3)=3
}

// Compare MEGA's Batch-Oriented Execution against the JetStream baseline
// on a synthesized evolving graph.
func ExampleSimulate() {
	spec := mega.GraphSpec{
		Name: "ex", Vertices: 1 << 10, Edges: 1 << 14,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 1,
	}
	ev, err := mega.Evolve(spec, mega.EvolutionSpec{Snapshots: 8, BatchFraction: 0.01, Seed: 2})
	if err != nil {
		panic(err)
	}
	w, err := mega.NewWindow(ev)
	if err != nil {
		panic(err)
	}
	js, err := mega.SimulateJetStream(ev, mega.SSSP, 0, mega.JetStreamSimConfig())
	if err != nil {
		panic(err)
	}
	boe, err := mega.Simulate(w, mega.SSSP, 0, mega.BOE, mega.DefaultSimConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("BOE+BP faster than JetStream: %v\n", boe.Speedup(js) > 1)
	// Output: BOE+BP faster than JetStream: true
}
