package mega_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"mega"
	"mega/internal/testutil"
)

// TestQueryServiceCacheHitBitIdentical is the headline acceptance check:
// a repeated identical query is served from the result cache with no
// second engine run, and the hit is Float64bits-identical to both the
// first served result and a direct EvaluateContext.
func TestQueryServiceCacheHitBitIdentical(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	w := soakWindow(t)
	want, err := mega.EvaluateContext(context.Background(), w, mega.SSSP, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := mega.NewQueryService(mega.ServeOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	req := mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: 3}
	first, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("first Submit = %v", err)
	}
	second, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("second Submit = %v", err)
	}
	if second.Report.Engine != "cache" || second.Report.Cache != "hit" {
		t.Errorf("second report = %+v, want a cache hit", second.Report)
	}
	identicalBits(t, "first serve", want, first.Values)
	identicalBits(t, "cache hit", want, second.Values)

	st := s.Stats()
	if st.EngineRuns != 1 {
		t.Errorf("EngineRuns = %d, want 1 — the repeat must not run the engine", st.EngineRuns)
	}
	if st.CacheHits != 1 || st.Admitted != 2 || st.Completed != 2 {
		t.Errorf("stats = %+v, want 2 admitted = 2 completed with 1 hit", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close = %v (cache.accounting audit must hold)", err)
	}
}

// TestEvaluateMultiSourceMatchesPerSource pins the batched evaluation's
// correctness floor: one multi-source run returns, for every source,
// values bit-identical to that source's own single-source evaluation.
func TestEvaluateMultiSourceMatchesPerSource(t *testing.T) {
	w := soakWindow(t)
	sources := []mega.VertexID{0, 1, 7}
	got, err := mega.EvaluateMultiSource(context.Background(), w, mega.SSSP, sources, mega.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sources) {
		t.Fatalf("got %d result sets for %d sources", len(got), len(sources))
	}
	for i, src := range sources {
		want, err := mega.EvaluateContext(context.Background(), w, mega.SSSP, src)
		if err != nil {
			t.Fatal(err)
		}
		identicalBits(t, fmt.Sprintf("source %d", src), want, got[i])
	}
}

// TestQueryServiceBatchedMultiSource is the batching acceptance check:
// with the only run slot held, N concurrent same-window same-algo
// different-source queries gather on one flight and execute as a single
// multi-source engine run — the engine-run counter shows exactly one run
// for all N, and every caller gets its own source's bit-exact values.
func TestQueryServiceBatchedMultiSource(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	w := soakWindow(t)
	const n = 3
	baselines := make([][][]float64, n)
	for i := range baselines {
		vals, err := mega.EvaluateContext(context.Background(), w, mega.SSSP, mega.VertexID(i))
		if err != nil {
			t.Fatal(err)
		}
		baselines[i] = vals
	}

	s, err := mega.NewQueryService(mega.ServeOptions{
		Capacity: 1, QueueDepth: 8, CacheBytes: 32 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A chaos query (fault plans bypass sharing) stalls in the only slot
	// long enough for the shared queries to gather behind it.
	op, err := mega.ParseFaultOp("engine.round:latency=2ms@1x1")
	if err != nil {
		t.Fatal(err)
	}
	holdCtx := mega.WithFaultPlan(context.Background(), mega.NewFaultPlan(7).Add(op))
	hold := make(chan error, 1)
	go func() {
		_, err := s.Submit(holdCtx, mega.QueryRequest{Window: w, Algo: mega.SSWP, Source: 9, Label: "hold"})
		hold <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holding query never started")
		}
		time.Sleep(time.Millisecond)
	}

	type out struct {
		src mega.VertexID
		res *mega.QueryResult
		err error
	}
	outs := make(chan out, n)
	for i := 0; i < n; i++ {
		go func(src mega.VertexID) {
			res, err := s.Submit(context.Background(),
				mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: src})
			outs <- out{src, res, err}
		}(mega.VertexID(i))
	}
	for s.Stats().BatchedQueries != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("batching never happened: stats = %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < n; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatalf("source %d = %v, want success", o.src, o.err)
		}
		if o.res.Report.Engine != "multi" || o.res.Report.Sources != n {
			t.Errorf("source %d report = %+v, want an %d-source multi run", o.src, o.res.Report, n)
		}
		identicalBits(t, fmt.Sprintf("batched source %d", o.src), baselines[o.src], o.res.Values)
	}
	if err := <-hold; err != nil {
		t.Fatalf("holding query = %v", err)
	}
	st := s.Stats()
	// One run for the holder, exactly one for all n shared queries.
	if st.EngineRuns != 2 {
		t.Errorf("EngineRuns = %d, want 2 (hold + one batched run for %d queries)", st.EngineRuns, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// overlapPair hand-builds two windows with identical CommonGraphs and a
// shared first-hop batch that diverge afterwards — the stable-vertex
// seeding shape. Built from parts (not Evolve) so the overlap is exact.
func overlapPair(t *testing.T) (*mega.Window, *mega.Window) {
	t.Helper()
	const n = 96
	var initial mega.EdgeList
	for i := 0; i < n; i++ {
		initial = append(initial,
			mega.Edge{Src: mega.VertexID(i), Dst: mega.VertexID((i + 1) % n), Weight: float64(i%7 + 1)},
			mega.Edge{Src: mega.VertexID(i), Dst: mega.VertexID((i*5 + 2) % n), Weight: float64(i%3 + 1)})
	}
	initial = initial.Normalize()
	shared := mega.EdgeList{{Src: 1, Dst: 40, Weight: 2}, {Src: 8, Dst: 77, Weight: 1}}
	divergeA := mega.EdgeList{{Src: 3, Dst: 50, Weight: 3}}
	divergeB := mega.EdgeList{{Src: 4, Dst: 60, Weight: 5}}
	wA, err := mega.NewWindowFromParts(n, 3, initial,
		[]mega.EdgeList{shared, divergeA}, []mega.EdgeList{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	wB, err := mega.NewWindowFromParts(n, 3, initial,
		[]mega.EdgeList{shared, divergeB}, []mega.EdgeList{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	return wA, wB
}

// TestQueryServiceSeededQueryBitIdentical is the seeding soundness
// acceptance check: a query over a window overlapping a cached one starts
// from the cached converged base solution — and still produces values
// bit-identical to an unseeded direct evaluation, because equal
// CommonGraph digests mean the skipped base solve would have produced
// exactly the seeded bits.
func TestQueryServiceSeededQueryBitIdentical(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	wA, wB := overlapPair(t)
	want, err := mega.EvaluateContext(context.Background(), wB, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := mega.NewQueryService(mega.ServeOptions{CacheBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), mega.QueryRequest{Window: wA, Algo: mega.SSSP, Source: 0}); err != nil {
		t.Fatalf("donor Submit = %v", err)
	}
	res, err := s.Submit(context.Background(), mega.QueryRequest{Window: wB, Algo: mega.SSSP, Source: 0})
	if err != nil {
		t.Fatalf("seeded Submit = %v", err)
	}
	if res.Report.Cache == "hit" {
		t.Fatal("overlapping windows collided in the exact cache — they are not distinct")
	}
	if !res.Report.Seeded {
		t.Errorf("report = %+v, want Seeded (stable-vertex reuse)", res.Report)
	}
	identicalBits(t, "seeded query", want, res.Values)
	if st := s.Stats(); st.SeededQueries != 1 {
		t.Errorf("SeededQueries = %d, want 1", st.SeededQueries)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// TestQueryServiceSoakSharing extends the chaos soak to the sharing
// layer: hundreds of concurrent duplicate and multi-source queries, a
// slice of them abandoning early, over a cache-enabled service. Asserts
// no query is lost, successes stay bit-identical, the conservation law
// survives follower accounting, sharing genuinely engaged, and every
// audit (including cache.accounting) holds at Close. Run under -race.
func TestQueryServiceSoakSharing(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	w := soakWindow(t)

	total := 160
	if os.Getenv("MEGA_CHAOS") != "" {
		total = 320
	}

	type class struct {
		name     string
		algo     mega.AlgorithmKind
		src      mega.VertexID
		parallel bool
		// abandon: cancel the caller's context shortly after submit; the
		// outcome may be success (resolved first) or ErrCanceled.
		abandon bool
	}
	classes := []class{
		{name: "dup-seq", algo: mega.SSSP, src: 0},
		{name: "dup-par", algo: mega.SSWP, src: 1, parallel: true},
		{name: "multi-a", algo: mega.SSSP, src: 2},
		{name: "multi-b", algo: mega.SSSP, src: 3},
		{name: "abandoner", algo: mega.SSSP, src: 0, abandon: true},
	}

	type bkey struct {
		a mega.AlgorithmKind
		s mega.VertexID
	}
	baseline := map[bkey][][]float64{}
	for _, c := range classes {
		k := bkey{c.algo, c.src}
		if _, ok := baseline[k]; ok {
			continue
		}
		vals, err := mega.EvaluateContext(context.Background(), w, c.algo, c.src)
		if err != nil {
			t.Fatal(err)
		}
		baseline[k] = vals
	}

	svc, err := mega.NewQueryService(mega.ServeOptions{
		Capacity:   3,
		QueueDepth: total,
		CacheBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		idx int
		res *mega.QueryResult
		err error
	}
	outcomes := make(chan outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := classes[i%len(classes)]
			ctx := context.Background()
			if c.abandon {
				cctx, cancel := context.WithTimeout(ctx, time.Duration(i%4)*250*time.Microsecond)
				defer cancel()
				ctx = cctx
			}
			res, err := svc.Submit(ctx, mega.QueryRequest{
				Window:   w,
				Algo:     c.algo,
				Source:   c.src,
				Parallel: c.parallel,
				Workers:  4,
				Priority: mega.QueryPriority(i % 3),
				Label:    fmt.Sprintf("%s/%d", c.name, i),
			})
			outcomes <- outcome{idx: i, res: res, err: err}
		}(i)
	}
	wg.Wait()
	close(outcomes)

	resolved, succeeded := 0, 0
	for o := range outcomes {
		resolved++
		c := classes[o.idx%len(classes)]
		switch {
		case o.err == nil:
			succeeded++
			identicalBits(t, fmt.Sprintf("query %d (%s)", o.idx, c.name),
				baseline[bkey{c.algo, c.src}], o.res.Values)
		case c.abandon && errors.Is(o.err, mega.ErrCanceled):
			// An abandoner may also land a cache hit first; both are fine.
		default:
			t.Errorf("query %d (%s) = %v, want success%s", o.idx, c.name, o.err,
				map[bool]string{true: " or ErrCanceled", false: ""}[c.abandon])
		}
	}
	if resolved != total {
		t.Fatalf("resolved %d of %d queries — queries were lost", resolved, total)
	}
	if succeeded == 0 {
		t.Fatal("no query succeeded; the soak proved nothing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close = %v (all audits, including cache.accounting, must hold)", err)
	}

	st := svc.Stats()
	if st.Admitted != st.Completed+st.Failed+st.Canceled+st.Shed {
		t.Errorf("conservation violated: %+v", st)
	}
	if st.Rejected != 0 {
		t.Errorf("rejected = %d at a queue depth of %d, want 0", st.Rejected, total)
	}
	if st.EngineRuns >= uint64(total) {
		t.Errorf("EngineRuns = %d of %d queries — sharing never engaged", st.EngineRuns, total)
	}
	if st.CacheHits+st.CoalescedQueries+st.BatchedQueries == 0 {
		t.Error("no cache hit, coalesce, or batch across the whole soak")
	}
	if audit := svc.Audit(); !audit.OK {
		t.Errorf("accounting audit failed: %s", audit.Detail)
	}
	t.Logf("soak: %d queries, %d engine runs, %d hits, %d coalesced, %d batched, %d seeded",
		total, st.EngineRuns, st.CacheHits, st.CoalescedQueries, st.BatchedQueries, st.SeededQueries)
}
