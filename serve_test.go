package mega_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"mega"
	"mega/internal/testutil"
)

// soakWindow is a smaller window than eightSnapshotWindow so the soak's
// hundreds of evaluations stay fast under -race.
func soakWindow(t testing.TB) *mega.Window {
	t.Helper()
	spec := mega.GraphSpec{
		Name: "serve-soak", Vertices: 1 << 9, Edges: 6_000,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 23,
	}
	ev, err := mega.Evolve(spec, mega.EvolutionSpec{Snapshots: 6, BatchFraction: 0.02, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// identicalBits fails unless got matches want bit-for-bit (Float64bits) —
// the service must not perturb results in any way, not even by a ULP.
func identicalBits(t *testing.T, label string, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: snapshot counts differ: %d vs %d", label, len(got), len(want))
	}
	for s := range want {
		if len(want[s]) != len(got[s]) {
			t.Fatalf("%s: snapshot %d lengths differ", label, s)
		}
		for v := range want[s] {
			if math.Float64bits(want[s][v]) != math.Float64bits(got[s][v]) {
				t.Fatalf("%s: snapshot %d vertex %d: %v vs %v (bits differ)",
					label, s, v, got[s][v], want[s][v])
			}
		}
	}
}

// TestQueryServiceMatchesEvaluateContext checks a query routed through the
// full service stack returns bit-identical values to a direct evaluation.
func TestQueryServiceMatchesEvaluateContext(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	w := eightSnapshotWindow(t)
	want, err := mega.EvaluateContext(context.Background(), w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := mega.NewQueryService(mega.ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Submit(context.Background(), mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: 0})
	if err != nil {
		t.Fatalf("Submit = %v", err)
	}
	identicalBits(t, "served query", want, res.Values)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
}

// TestQueryServiceRejectsNegativeOptions pins the root-level constructor
// contract: negative engine knobs are refused up front with a typed
// ErrInvalidInput instead of surfacing as a confusing per-query failure.
func TestQueryServiceRejectsNegativeOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  mega.ServeOptions
	}{
		{"checkpoint-every", mega.ServeOptions{CheckpointEvery: -1}},
		{"max-retries", mega.ServeOptions{MaxRetries: -2}},
		{"backoff", mega.ServeOptions{Backoff: -time.Millisecond}},
		{"capacity", mega.ServeOptions{Capacity: -1}},
		{"queue-depth", mega.ServeOptions{QueueDepth: -4}},
		{"default-deadline", mega.ServeOptions{DefaultDeadline: -time.Second}},
		{"default-queue-timeout", mega.ServeOptions{DefaultQueueTimeout: -time.Second}},
	}
	for _, c := range cases {
		s, err := mega.NewQueryService(c.opt)
		if s != nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			s.Close(ctx)
			cancel()
		}
		if !errors.Is(err, mega.ErrInvalidInput) {
			t.Errorf("%s: NewQueryService(%+v) err = %v, want ErrInvalidInput", c.name, c.opt, err)
		}
	}
}

// TestQueryServiceOverloadContract checks the root-level re-exports: a
// saturated service rejects with an error matching mega.ErrOverload and
// carrying *mega.OverloadError detail.
func TestQueryServiceOverloadContract(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	w := soakWindow(t)
	s, err := mega.NewQueryService(mega.ServeOptions{Capacity: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the only slot with a query frozen by an effectively-infinite
	// injected latency, fill the queue, then overflow.
	op, err := mega.ParseFaultOp("engine.round:latency=1h@1")
	if err != nil {
		t.Fatal(err)
	}
	frozen := mega.WithFaultPlan(context.Background(), mega.NewFaultPlan(1).Add(op))
	var wg sync.WaitGroup
	wg.Add(2)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		// Ends when Close's straggler cancellation fires.
		_, err := s.Submit(frozen, mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: 0})
		if !errors.Is(err, mega.ErrCanceled) {
			t.Errorf("frozen query = %v, want ErrCanceled from the drain", err)
		}
	}()
	<-started
	go func() {
		defer wg.Done()
		_, err := s.Submit(context.Background(), mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: 0})
		if !errors.Is(err, mega.ErrCanceled) {
			t.Errorf("queued query = %v, want ErrCanceled from the drain", err)
		}
	}()
	waitStats(t, s, func(st mega.QueryServiceStats) bool { return st.Running == 1 && st.Queued == 1 })

	_, err = s.Submit(context.Background(), mega.QueryRequest{Window: w, Algo: mega.SSSP, Source: 0})
	if !errors.Is(err, mega.ErrOverload) {
		t.Fatalf("overflow Submit = %v, want mega.ErrOverload", err)
	}
	var oe *mega.OverloadError
	if !errors.As(err, &oe) || oe.Capacity != 1 {
		t.Errorf("overload detail = %+v, want capacity 1", oe)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
	wg.Wait()
}

// waitStats polls the service's stats until cond holds.
func waitStats(t *testing.T, s *mega.QueryService, cond func(mega.QueryServiceStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for stats; last = %+v", s.Stats())
}

// soakClass is the deterministic per-query plan of the chaos soak. Each
// submitted query falls in one class by index; the class fixes its fault
// plan and its only acceptable outcomes.
type soakClass struct {
	name string
	algo mega.AlgorithmKind
	src  mega.VertexID
	// faultSpec, when nonempty, is parsed into a fresh per-query plan.
	faultSpec string
	parallel  bool
	deadline  time.Duration
	// wantSuccess: the query must succeed with bit-identical values.
	// Otherwise wantErr must match the failure.
	wantSuccess bool
	wantErr     error
}

// TestQueryServiceSoakChaos is the service's end-to-end proof: hundreds of
// concurrent mixed-priority queries over one shared window, with fault
// plans injecting transients, worker panics, and latency spikes, all under
// the race detector. It asserts (1) no query is lost — every Submit
// resolves with a result or a typed error, (2) accounting is conserved —
// admitted == completed + failed + canceled with zero rejections at this
// queue depth, (3) every successful result is bit-identical to a direct
// EvaluateContext, and (4) no goroutines leak through Close.
func TestQueryServiceSoakChaos(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	w := soakWindow(t)

	total := 240
	if os.Getenv("MEGA_CHAOS") != "" {
		total = 400
	}

	// The one-shot transient class kills the run mid-flight: find a round
	// count the sequential engine actually reaches.
	counter := mega.NewFaultPlan(1)
	if _, err := mega.EvaluateContext(mega.WithFaultPlan(context.Background(), counter), w, mega.SSSP, 0); err != nil {
		t.Fatal(err)
	}
	kill := counter.Visits("engine.round", -1) / 2
	if kill < 1 {
		t.Fatal("window too small to place a mid-run fault")
	}

	classes := []soakClass{
		{name: "clean-seq-latency", algo: mega.SSSP, src: 0,
			faultSpec: "engine.round:latency=200us@2", wantSuccess: true},
		{name: "clean-parallel", algo: mega.SSWP, src: 1, parallel: true, wantSuccess: true},
		{name: "panic-fallback", algo: mega.SSSP, src: 2, parallel: true,
			faultSpec: "parallel.phase#1:panic@3", wantSuccess: true},
		{name: "transient-resume", algo: mega.SSSP, src: 0,
			faultSpec: fmt.Sprintf("engine.round:transient@%d", kill), wantSuccess: true},
		{name: "transient-exhaust", algo: mega.SSWP, src: 1,
			faultSpec: "engine.round:transient@1x1", wantErr: mega.ErrTransient},
		{name: "deadline-doomed", algo: mega.SSSP, src: 0,
			deadline: time.Nanosecond, wantErr: mega.ErrCanceled},
	}

	// Direct-evaluation baselines for every (algo, source) a successful
	// class can produce.
	type key struct {
		a mega.AlgorithmKind
		s mega.VertexID
	}
	baseline := map[key][][]float64{}
	for _, c := range classes {
		k := key{c.algo, c.src}
		if _, ok := baseline[k]; ok {
			continue
		}
		vals, err := mega.EvaluateContext(context.Background(), w, c.algo, c.src)
		if err != nil {
			t.Fatal(err)
		}
		baseline[k] = vals
	}

	svc, err := mega.NewQueryService(mega.ServeOptions{
		Capacity:        4,
		QueueDepth:      total, // soak asserts exact conservation: nothing rejected
		CheckpointEvery: 2,
		MaxRetries:      2,
		Backoff:         time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		idx int
		res *mega.QueryResult
		err error
	}
	outcomes := make(chan outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := classes[i%len(classes)]
			ctx := context.Background()
			if c.faultSpec != "" {
				op, perr := mega.ParseFaultOp(c.faultSpec)
				if perr != nil {
					outcomes <- outcome{idx: i, err: perr}
					return
				}
				ctx = mega.WithFaultPlan(ctx, mega.NewFaultPlan(int64(i)).Add(op))
			}
			res, err := svc.Submit(ctx, mega.QueryRequest{
				Window:   w,
				Algo:     c.algo,
				Source:   c.src,
				Priority: mega.QueryPriority(i % 3),
				Deadline: c.deadline,
				Parallel: c.parallel,
				Workers:  4,
				Label:    fmt.Sprintf("%s/%d", c.name, i),
			})
			outcomes <- outcome{idx: i, res: res, err: err}
		}(i)
	}
	wg.Wait()
	close(outcomes)

	// No lost queries: every Submit resolved exactly once.
	resolved := 0
	succeeded := 0
	for o := range outcomes {
		resolved++
		c := classes[o.idx%len(classes)]
		if c.wantSuccess {
			if o.err != nil {
				t.Errorf("query %d (%s) = %v, want success", o.idx, c.name, o.err)
				continue
			}
			succeeded++
			identicalBits(t, fmt.Sprintf("query %d (%s)", o.idx, c.name),
				baseline[key{c.algo, c.src}], o.res.Values)
		} else if !errors.Is(o.err, c.wantErr) {
			t.Errorf("query %d (%s) = %v, want %v", o.idx, c.name, o.err, c.wantErr)
		}
	}
	if resolved != total {
		t.Fatalf("resolved %d of %d queries — queries were lost", resolved, total)
	}
	if succeeded == 0 {
		t.Fatal("no query succeeded; the soak proved nothing")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close = %v (accounting audit must hold)", err)
	}

	st := svc.Stats()
	if st.Admitted != uint64(total) || st.Rejected != 0 || st.Shed != 0 {
		t.Errorf("admission stats = %+v, want all %d admitted at this queue depth", st, total)
	}
	if st.Admitted != st.Completed+st.Failed+st.Canceled {
		t.Errorf("conservation violated: %+v", st)
	}
	if audit := svc.Audit(); !audit.OK {
		t.Errorf("accounting audit failed: %s", audit.Detail)
	}
}
