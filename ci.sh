#!/bin/sh
# CI gate: vet, build, race-enabled tests, then a short fuzz pass over
# every fuzz target. FUZZTIME (default 30s) scales the fuzz budget.
set -eux

FUZZTIME="${FUZZTIME:-30s}"

go vet ./...
go build ./...
go test -race ./...
go test -run='^$' -fuzz=FuzzLoadEdgeList -fuzztime="$FUZZTIME" ./internal/gen/
go test -run='^$' -fuzz=FuzzNewWindowFromParts -fuzztime="$FUZZTIME" ./internal/evolve/
