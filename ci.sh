#!/bin/sh
# CI gate: vet, build, race-enabled tests, then a short fuzz pass over
# every fuzz target. FUZZTIME (default 30s) scales the fuzz budget.
set -eux

FUZZTIME="${FUZZTIME:-30s}"

# Formatting gate: the tree must be gofmt-clean.
fmt_dirty="$(gofmt -l .)"
if [ -n "$fmt_dirty" ]; then
	echo "gofmt needed:" >&2
	echo "$fmt_dirty" >&2
	exit 1
fi
go vet ./...
go build ./...
# -shuffle=on randomizes test order so inter-test state dependencies
# (shared registries, leaked globals) fail loudly instead of by luck.
go test -race -shuffle=on ./...
# Benchmark smoke: one iteration of every benchmark, so a broken or
# crashing benchmark fails CI even though nothing is being measured.
go test -bench=. -benchtime=1x -run='^$' ./...
# Event-inflation gate: the parallel engine's events/op relative to the
# sequential engine, measured deterministically (no timing, safe on a
# loaded box) at worker counts 1/2/4/8 under GOMAXPROCS 1 and 2. The
# threshold sits just above the value measured when sender-side
# coalescing landed (worst point: 8 workers under GOMAXPROCS=2 at
# 2.045x); the pre-coalescing engine measured 3.34x at every worker
# count, so a regression that reopens the gap fails loudly.
go run ./cmd/megabench -inflation-gate "${INFLATION_MAX:-2.10}"
go test -run='^$' -fuzz=FuzzLoadEdgeList -fuzztime="$FUZZTIME" ./internal/gen/
go test -run='^$' -fuzz=FuzzNewWindowFromParts -fuzztime="$FUZZTIME" ./internal/evolve/
go test -run='^$' -fuzz=FuzzCheckpointDecode -fuzztime="$FUZZTIME" ./internal/engine/
go test -run='^$' -fuzz=FuzzParseTenantSpec -fuzztime="$FUZZTIME" ./internal/serve/
go test -run='^$' -fuzz=FuzzManifestDecode -fuzztime="$FUZZTIME" ./internal/ckptstore/
# Metrics smoke: a snapshot written by megasim must round-trip through
# its own validator — required families present, every audit passed.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go run ./cmd/megasim -snapshots 4 -metrics "$tmpdir/metrics.json" >/dev/null
go run ./cmd/megasim -verify-metrics "$tmpdir/metrics.json"
# Invariant-audit sweep with strict mode forced on.
MEGA_AUDIT=1 go test -race -run 'Audit|Attribution|StatsMatchMetrics|Conservation' \
	./internal/metrics/ ./internal/engine/ ./internal/sim/ ./internal/uarch/
# Chaos gate: the full crash-equivalence sweep — kill the run at EVERY
# round boundary, resume from the checkpoint, demand bit-identical
# results — for both engines and all three schedule modes, under -race.
# MEGA_CHAOS also forces strict audits, so resumed runs re-prove the
# conservation laws too.
MEGA_CHAOS=full go test -race -run 'CrashEquivalence|Audit|Attribution' \
	./internal/engine/ ./internal/sim/ ./internal/uarch/
# Disk-fault chaos gate: the durable checkpoint store's crash-equivalence
# sweep — an injected crash at EVERY store.write / store.rename protocol
# boundary, restart against the same state directory, values identical to
# an uninterrupted run, books audited strict — plus the torn-write table
# (segment truncated and bit-flipped at every byte offset must quarantine
# and fall back to the previous generation) and the service-level
# restart/orphan-recovery tests.
MEGA_CHAOS=full go test -race -run 'Durable|ServeRecoverOrphans|TornSegment|CrashResidue|Quarantine' \
	. ./internal/ckptstore/
# Query-service soak: hundreds of concurrent mixed-priority queries with
# injected transients, worker panics, and latency spikes under -race, with
# strict audits (MEGA_CHAOS) so the Close-time accounting conservation
# law — admitted == completed + failed + canceled + shed — fails loudly,
# per tenant and in aggregate. The Tenant soak floods one tenant with
# chaos queries and proves the well-behaved tenant keeps its goodput; the
# HTTPFront variants re-run the same chaos through the loopback HTTP
# stack, including a mid-flight graceful drain.
MEGA_CHAOS=soak go test -race -run 'QueryService|Serve|Tenant|HTTPFront' .
MEGA_CHAOS=soak go test -race -count=1 ./internal/serve/ ./internal/httpfront/
# HTTP end-to-end smoke: build megaserve, start it on an ephemeral port,
# run one real query through the retrying client binary, then SIGTERM the
# server and require a clean drained exit (code 0).
go build -o "$tmpdir/megaserve" ./cmd/megaserve
"$tmpdir/megaserve" -listen 127.0.0.1:0 -addr-file "$tmpdir/addr" \
	-snapshots 4 >/dev/null 2>"$tmpdir/serve.log" &
serve_pid=$!
i=0
while [ ! -s "$tmpdir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "megaserve never wrote its addr file" >&2
		cat "$tmpdir/serve.log" >&2
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
addr="$(cat "$tmpdir/addr")"
# Cross-query sharing smoke: the same query twice — the first is a real
# engine run, the second must be answered from the result cache (the
# client prints the report's cache status, and /stats must account
# exactly one hit over exactly one engine run).
"$tmpdir/megaserve" -server "http://$addr" -algo SSSP -source 0 \
	| grep -q 'cache=none'
"$tmpdir/megaserve" -server "http://$addr" -algo SSSP -source 0 \
	| grep -q 'engine=cache cache=hit'
"$tmpdir/megaserve" -server "http://$addr" -stats | tee "$tmpdir/stats.out"
grep -q 'cache hits=1 misses=1 lookups=2' "$tmpdir/stats.out"
grep -q 'engine_runs=1' "$tmpdir/stats.out"
kill -TERM "$serve_pid"
wait "$serve_pid"
# Crash-restart smoke, megasim: SIGKILL an eval run that is spooling
# checkpoints into -state-dir, rerun the same command, and require the
# rerun to report a durable resume and finish cleanly with the store's
# accounting audit strict (MEGA_CHAOS).
go build -o "$tmpdir/megasim" ./cmd/megasim
"$tmpdir/megasim" -mode eval -snapshots 4 -checkpoint-every 1 \
	-state-dir "$tmpdir/simstate" \
	-fault 'engine.round:latency=250ms@6x1' >/dev/null 2>&1 &
sim_pid=$!
i=0
until ls "$tmpdir/simstate"/q-*/ckpt-*.seg >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "megasim never promoted a durable checkpoint" >&2
		kill "$sim_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
kill -KILL "$sim_pid"
wait "$sim_pid" || true
MEGA_CHAOS=1 "$tmpdir/megasim" -mode eval -snapshots 4 -checkpoint-every 1 \
	-state-dir "$tmpdir/simstate" | tee "$tmpdir/resume.out"
grep -q '^resumed:' "$tmpdir/resume.out"
# Crash-restart smoke, megaserve: SIGKILL the server mid-query (the query
# slowed by injected latency so checkpoints outnumber rounds survived),
# restart it on the same -state-dir, and require (a) the cold start to
# re-admit the orphan, (b) the store books to drain to zero live queries
# with at least one durable resume, and (c) a repeat of the killed query
# to come back resumed or cache-served — never recomputed from scratch.
"$tmpdir/megaserve" -listen 127.0.0.1:0 -addr-file "$tmpdir/addr2" \
	-snapshots 4 -checkpoint-every 1 -allow-faults \
	-state-dir "$tmpdir/srvstate" >/dev/null 2>"$tmpdir/serve2.log" &
serve_pid=$!
i=0
while [ ! -s "$tmpdir/addr2" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "megaserve (state-dir) never wrote its addr file" >&2
		cat "$tmpdir/serve2.log" >&2
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
addr="$(cat "$tmpdir/addr2")"
("$tmpdir/megaserve" -server "http://$addr" -algo SSSP -source 0 \
	-fault 'engine.round:latency=250ms@6x1' >/dev/null 2>&1 || true) &
i=0
until ls "$tmpdir/srvstate"/q-*/ckpt-*.seg >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "megaserve never promoted a durable checkpoint" >&2
		cat "$tmpdir/serve2.log" >&2
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
kill -KILL "$serve_pid"
wait "$serve_pid" || true
rm -f "$tmpdir/addr2"
MEGA_CHAOS=1 "$tmpdir/megaserve" -listen 127.0.0.1:0 -addr-file "$tmpdir/addr2" \
	-snapshots 4 -checkpoint-every 1 \
	-state-dir "$tmpdir/srvstate" >/dev/null 2>"$tmpdir/serve3.log" &
serve_pid=$!
i=0
while [ ! -s "$tmpdir/addr2" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "restarted megaserve never wrote its addr file" >&2
		cat "$tmpdir/serve3.log" >&2
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
addr="$(cat "$tmpdir/addr2")"
grep -q 'recovered 1 orphaned' "$tmpdir/serve3.log"
i=0
until "$tmpdir/megaserve" -server "http://$addr" -stats \
	| grep -q 'store queries=0 .* resumes=1'; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "recovered orphan never completed" >&2
		"$tmpdir/megaserve" -server "http://$addr" -stats >&2 || true
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
"$tmpdir/megaserve" -server "http://$addr" -algo SSSP -source 0 \
	| grep -Eq 'resumed=true|engine=cache cache=hit'
kill -TERM "$serve_pid"
wait "$serve_pid"
