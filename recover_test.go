package mega_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mega"
	"mega/internal/testutil"
)

// instantBackoff replaces EvaluateRecover's real backoff clock with a
// recorder: waits return immediately (still honoring ctx) and the waited
// durations are captured, so retry tests are fast and timing-independent.
func instantBackoff(t *testing.T) *[]time.Duration {
	t.Helper()
	var waits []time.Duration
	restore := mega.SetRetrySleep(func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		waits = append(waits, d)
		return nil
	})
	t.Cleanup(restore)
	return &waits
}

// countRounds runs the query once under an empty fault plan and returns
// how many engine round boundaries a sequential run visits — the basis
// for placing injected faults mid-run.
func countRounds(t *testing.T, w *mega.Window) uint64 {
	t.Helper()
	counter := mega.NewFaultPlan(1)
	ctx := mega.WithFaultPlan(context.Background(), counter)
	if _, err := mega.EvaluateContext(ctx, w, mega.SSSP, 0); err != nil {
		t.Fatal(err)
	}
	rounds := counter.Visits("engine.round", -1)
	if rounds < 2 {
		t.Fatalf("baseline visited only %d rounds; window too small for fault placement", rounds)
	}
	return rounds
}

func sameValues(t *testing.T, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(want), len(got))
	}
	for s := range want {
		for v := range want[s] {
			if want[s][v] != got[s][v] {
				t.Fatalf("snapshot %d vertex %d: %v vs %v", s, v, got[s][v], want[s][v])
			}
		}
	}
}

// TestEvaluateRecoverTransient injects a one-shot transient fault halfway
// through the run and checks EvaluateRecover resumes from a checkpoint
// and produces results identical to a clean run.
func TestEvaluateRecoverTransient(t *testing.T) {
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}
	kill := countRounds(t, w) / 2

	op, err := mega.ParseFaultOp("engine.round:transient@" + itoa(kill))
	if err != nil {
		t.Fatal(err)
	}
	plan := mega.NewFaultPlan(2).Add(op)
	ctx := mega.WithFaultPlan(context.Background(), plan)

	waits := instantBackoff(t)
	got, rec, err := mega.EvaluateRecover(ctx, w, mega.SSSP, 0, mega.BOE, mega.RecoverOptions{
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatalf("EvaluateRecover = %v, want recovery", err)
	}
	if rec.Attempts != 2 || rec.Resumes != 1 {
		t.Errorf("recovery = %+v, want 2 attempts with 1 resume", rec)
	}
	if len(*waits) != 1 {
		t.Errorf("backoff waits = %v, want exactly one before the retry", *waits)
	}
	if len(rec.Faults) != 1 {
		t.Errorf("faults = %q, want exactly the injected one", rec.Faults)
	}
	sameValues(t, clean, got)
}

// TestEvaluateRecoverParallelPanicFallsBack injects a panic into a
// parallel worker phase and checks the retry loop demotes to the
// sequential engine, resumes from the parallel engine's checkpoint, and
// still matches a clean run — checkpoints are engine-portable.
func TestEvaluateRecoverParallelPanicFallsBack(t *testing.T) {
	testutil.NoGoroutineLeak(t)
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSSP, 0)
	if err != nil {
		t.Fatal(err)
	}

	op, err := mega.ParseFaultOp("parallel.phase#1:panic@4")
	if err != nil {
		t.Fatal(err)
	}
	plan := mega.NewFaultPlan(3).Add(op)
	ctx := mega.WithFaultPlan(context.Background(), plan)

	instantBackoff(t)
	got, rec, err := mega.EvaluateRecover(ctx, w, mega.SSSP, 0, mega.BOE, mega.RecoverOptions{
		Parallel:        true,
		Workers:         4,
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatalf("EvaluateRecover = %v, want fallback recovery", err)
	}
	if !rec.FellBack {
		t.Errorf("recovery = %+v, want FellBack after a worker panic", rec)
	}
	if rec.Attempts < 2 {
		t.Errorf("attempts = %d, want at least 2", rec.Attempts)
	}
	if len(rec.Faults) == 0 {
		t.Error("no fault recorded for the contained panic")
	}
	sameValues(t, clean, got)
}

// TestEvaluateRecoverRetriesExhausted uses a periodic transient fault that
// fires at every round boundary, so every attempt dies; the loop must give
// up after MaxRetries with Attempts = retries+1, surfacing the LAST
// attempt's transient error alongside the full Recovery.Faults trail, and
// waiting the documented linear-backoff schedule between attempts.
func TestEvaluateRecoverRetriesExhausted(t *testing.T) {
	w := eightSnapshotWindow(t)
	op, err := mega.ParseFaultOp("engine.round:transient@1x1")
	if err != nil {
		t.Fatal(err)
	}
	plan := mega.NewFaultPlan(4).Add(op)
	ctx := mega.WithFaultPlan(context.Background(), plan)

	waits := instantBackoff(t)
	backoff := 7 * time.Millisecond
	_, rec, err := mega.EvaluateRecover(ctx, w, mega.SSSP, 0, mega.BOE, mega.RecoverOptions{
		MaxRetries: 2,
		Backoff:    backoff,
	})
	if !mega.IsTransient(err) {
		t.Fatalf("EvaluateRecover = %v, want the transient fault after exhaustion", err)
	}
	if rec.Attempts != 3 {
		t.Errorf("attempts = %d, want MaxRetries+1 = 3", rec.Attempts)
	}
	if len(rec.Faults) != 3 {
		t.Errorf("faults = %d, want one per attempt", len(rec.Faults))
	}
	// The returned error is the last attempt's fault, and the trail keeps
	// every attempt's error in order.
	if len(rec.Faults) == 3 && rec.Faults[2] != err.Error() {
		t.Errorf("returned error %q is not the last recorded fault %q", err, rec.Faults[2])
	}
	// Attempt n waits (n+1)×Backoff; the exhausted attempt never waits.
	if len(*waits) != 2 || (*waits)[0] != 1*backoff || (*waits)[1] != 2*backoff {
		t.Errorf("backoff schedule = %v, want [%v %v]", *waits, 1*backoff, 2*backoff)
	}
}

// TestEvaluateRecoverBackoffHonorsCancel checks a context canceled during
// the backoff wait aborts the retry loop with an ErrCanceled error instead
// of attempting again.
func TestEvaluateRecoverBackoffHonorsCancel(t *testing.T) {
	w := eightSnapshotWindow(t)
	op, err := mega.ParseFaultOp("engine.round:transient@1x1")
	if err != nil {
		t.Fatal(err)
	}
	plan := mega.NewFaultPlan(4).Add(op)
	ctx, cancel := context.WithCancel(mega.WithFaultPlan(context.Background(), plan))

	restore := mega.SetRetrySleep(func(ctx context.Context, d time.Duration) error {
		cancel() // cancellation arrives mid-backoff
		return ctx.Err()
	})
	t.Cleanup(restore)

	_, rec, err := mega.EvaluateRecover(ctx, w, mega.SSSP, 0, mega.BOE, mega.RecoverOptions{
		MaxRetries: 3,
	})
	if !errors.Is(err, mega.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateRecover = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if rec.Attempts != 1 {
		t.Errorf("attempts = %d, want the canceled backoff to stop the loop after 1", rec.Attempts)
	}
}

// TestEvaluateRecoverSinkAndExternalResume checks the Sink/Checkpoint
// pair: a first process persists checkpoints through Sink and dies on an
// injected fault; a second process resumes from the persisted bytes and
// finishes with clean-run results.
func TestEvaluateRecoverSinkAndExternalResume(t *testing.T) {
	w := eightSnapshotWindow(t)
	clean, err := mega.Evaluate(w, mega.SSWP, 0)
	if err != nil {
		t.Fatal(err)
	}

	var persisted []byte
	sink := func(b []byte) error {
		persisted = append(persisted[:0], b...)
		return nil
	}

	// Process one: a periodic fault fires at every round boundary from
	// visit 5 on, so every attempt dies and the process "crashes" with
	// only the sink-persisted checkpoint surviving.
	op, err := mega.ParseFaultOp("engine.round:transient@5x1")
	if err != nil {
		t.Fatal(err)
	}
	plan := mega.NewFaultPlan(5).Add(op)
	ctx := mega.WithFaultPlan(context.Background(), plan)
	instantBackoff(t)
	_, _, err = mega.EvaluateRecover(ctx, w, mega.SSWP, 0, mega.BOE, mega.RecoverOptions{
		CheckpointEvery: 1,
		MaxRetries:      1,
		Sink:            sink,
	})
	if !mega.IsTransient(err) {
		t.Fatalf("process one = %v, want to die on the periodic transient fault", err)
	}
	if len(persisted) == 0 {
		t.Fatal("sink never received a checkpoint")
	}

	// Process two: fresh context, resume purely from the persisted bytes.
	got, rec, err := mega.EvaluateRecover(context.Background(), w, mega.SSWP, 0, mega.BOE, mega.RecoverOptions{
		Checkpoint: persisted,
	})
	if err != nil {
		t.Fatalf("resume from persisted checkpoint = %v", err)
	}
	if rec.Attempts != 1 {
		t.Errorf("attempts = %d, want a single clean resumed run", rec.Attempts)
	}
	sameValues(t, clean, got)
}

// TestEvaluateRecoverRejectsCorruptCheckpoint checks a corrupted resume
// blob fails fast with ErrCheckpoint instead of being retried.
func TestEvaluateRecoverRejectsCorruptCheckpoint(t *testing.T) {
	w := eightSnapshotWindow(t)
	_, rec, err := mega.EvaluateRecover(context.Background(), w, mega.SSSP, 0, mega.BOE, mega.RecoverOptions{
		Checkpoint: []byte("definitely not a checkpoint"),
	})
	if !errors.Is(err, mega.ErrCheckpoint) {
		t.Fatalf("EvaluateRecover = %v, want ErrCheckpoint", err)
	}
	if rec.Attempts != 1 {
		t.Errorf("attempts = %d, want no retries for corrupt input", rec.Attempts)
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
