package mega

import (
	"mega/internal/ckptstore"
	"mega/internal/engine"
)

// Durable checkpoint store surface (internal/ckptstore re-exported). A
// CheckpointStore persists engine checkpoints across process death with
// full crash discipline — temp→fsync→rename publishes, parent-directory
// fsyncs, CRC-gated generations, corruption quarantine — so a killed
// megaserve or megasim resumes exactly where it died. See DESIGN.md §15
// for the layout and the fsync ordering argument.
type (
	// CheckpointStore is a crash-safe on-disk checkpoint store.
	CheckpointStore = ckptstore.Store
	// CheckpointStoreConfig configures OpenCheckpointStore.
	CheckpointStoreConfig = ckptstore.Config
	// CheckpointQueryID is the stable identity a query's checkpoints are
	// filed under: window fingerprint + algorithm + source + tenant.
	CheckpointQueryID = ckptstore.QueryID
	// CheckpointStoreStats snapshots a store's accounting books.
	CheckpointStoreStats = ckptstore.Stats
	// CheckpointStoreEntry summarizes one resumable query in a store.
	CheckpointStoreEntry = ckptstore.Entry
)

// OpenCheckpointStore opens (creating if necessary) a durable checkpoint
// store, adopting whatever a previous process left behind: valid
// segments are adopted, corrupt ones quarantined, stray temp files
// discarded.
func OpenCheckpointStore(cfg CheckpointStoreConfig) (*CheckpointStore, error) {
	return ckptstore.Open(cfg)
}

// CheckpointIDFor computes the durable-store identity of a query: the
// window's content fingerprint folded with the algorithm, source, and
// tenant. Two queries share an identity exactly when they compute the
// same values, which is what makes cross-process resume sound.
func CheckpointIDFor(w *Window, k AlgorithmKind, source VertexID, tenant string) (CheckpointQueryID, error) {
	fp, err := engine.FingerprintBOE(w)
	if err != nil {
		return CheckpointQueryID{}, err
	}
	return CheckpointQueryID{Win: fp.Key(), Algo: uint32(k), Source: uint32(source), Tenant: tenant}, nil
}

// AtomicWriteFile publishes data at path with full crash discipline:
// temp-file write, fsync, rename, parent-directory fsync. Readers see
// either the old contents or the new, never a torn mix.
func AtomicWriteFile(path string, data []byte) error {
	return ckptstore.AtomicWrite(path, data)
}
