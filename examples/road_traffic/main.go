// Road traffic: maintain shortest travel times from a depot across hourly
// snapshots of a road network as closures remove roads and reopenings /
// new links add them (the streaming-vs-evolving example of §1, evaluated
// the evolving way: all hours at once). The network is a hand-built grid
// with express links, exercising NewWindowFromParts rather than the
// synthetic generator.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mega"
)

const (
	gridSide = 64 // 64x64 intersections
	hours    = 10
)

func vid(x, y int) mega.VertexID { return mega.VertexID(y*gridSide + x) }

func main() {
	r := rand.New(rand.NewSource(99))

	// Build the base road network: a 4-connected grid (bidirectional
	// roads with 1-9 minute travel times) plus a few express links.
	var roads mega.EdgeList
	addRoad := func(a, b mega.VertexID, minutes float64) {
		roads = append(roads,
			mega.Edge{Src: a, Dst: b, Weight: minutes},
			mega.Edge{Src: b, Dst: a, Weight: minutes})
	}
	for y := 0; y < gridSide; y++ {
		for x := 0; x < gridSide; x++ {
			if x+1 < gridSide {
				addRoad(vid(x, y), vid(x+1, y), float64(1+r.Intn(9)))
			}
			if y+1 < gridSide {
				addRoad(vid(x, y), vid(x, y+1), float64(1+r.Intn(9)))
			}
		}
	}
	for i := 0; i < 40; i++ {
		a := vid(r.Intn(gridSide), r.Intn(gridSide))
		b := vid(r.Intn(gridSide), r.Intn(gridSide))
		if a != b {
			addRoad(a, b, 2) // highway
		}
	}
	roads = roads.Normalize()

	// Hourly closures (deletions) and reopenings of *new* links
	// (additions). Each road changes at most once in the window.
	touched := map[uint64]bool{}
	var adds, dels []mega.EdgeList
	for h := 0; h < hours-1; h++ {
		var del mega.EdgeList
		for len(del) < 60 {
			e := roads[r.Intn(len(roads))]
			key := uint64(e.Src)<<32 | uint64(e.Dst)
			if touched[key] {
				continue
			}
			touched[key] = true
			del = append(del, e)
		}
		var add mega.EdgeList
		for len(add) < 30 {
			a := vid(r.Intn(gridSide), r.Intn(gridSide))
			b := vid(r.Intn(gridSide), r.Intn(gridSide))
			key := uint64(a)<<32 | uint64(b)
			if a == b || touched[key] || roads.Contains(a, b) {
				continue
			}
			touched[key] = true
			add = append(add, mega.Edge{Src: a, Dst: b, Weight: float64(1 + r.Intn(4))})
		}
		dels = append(dels, del.Normalize())
		adds = append(adds, add.Normalize())
	}

	w, err := mega.NewWindowFromParts(gridSide*gridSide, hours, roads, adds, dels)
	if err != nil {
		log.Fatal(err)
	}

	depot := vid(0, 0)
	values, err := mega.Evaluate(w, mega.SSSP, depot)
	if err != nil {
		log.Fatal(err)
	}

	dests := []struct {
		name string
		v    mega.VertexID
	}{
		{"city center", vid(gridSide/2, gridSide/2)},
		{"far corner", vid(gridSide-1, gridSide-1)},
		{"east gate", vid(gridSide-1, gridSide/4)},
	}
	fmt.Printf("road network: %d intersections, %d directed roads, %d hourly snapshots\n\n",
		gridSide*gridSide, len(roads), hours)
	fmt.Printf("%-6s", "hour")
	for _, d := range dests {
		fmt.Printf("  %-14s", d.name)
	}
	fmt.Println()
	for h, vals := range values {
		fmt.Printf("%-6d", h)
		for _, d := range dests {
			if math.IsInf(vals[d.v], 1) {
				fmt.Printf("  %-14s", "unreachable")
			} else {
				fmt.Printf("  %-14s", fmt.Sprintf("%.0f min", vals[d.v]))
			}
		}
		fmt.Println()
	}

	// How much would the accelerator gain over hour-by-hour streaming?
	ev := &mega.Evolution{NumVertices: gridSide * gridSide, Initial: roads, Adds: adds, Dels: dels}
	js, err := mega.SimulateJetStream(ev, mega.SSSP, depot, mega.JetStreamSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	boe, err := mega.Simulate(w, mega.SSSP, depot, mega.BOE, mega.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated: JetStream %.4f ms vs MEGA BOE+BP %.4f ms → %.2fx\n",
		js.TimeMs, boe.TimeMsBP, boe.Speedup(js))
}
