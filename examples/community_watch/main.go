// Community watch: track how communities merge and split as a network
// evolves, using the CC extension algorithm (self-seeding connected
// components — beyond the paper's Table 1, exercising §3.2's generality
// claim). The evolving window is evaluated three ways and cross-checked:
// the sequential engine, the goroutine-parallel software engine
// ("software BOE"), and the cycle-level microarchitectural simulator.
package main

import (
	"fmt"
	"log"

	"mega"
)

func main() {
	// A sparse network whose connectivity is fragile: components split
	// when contacts expire and merge when new ones appear.
	spec := mega.GraphSpec{
		Name: "community", Vertices: 4_096, Edges: 10_000,
		A: 0.40, B: 0.25, C: 0.25, MaxWeight: 4, Seed: 12,
	}
	ev, err := mega.Evolve(spec, mega.EvolutionSpec{
		Snapshots: 10, BatchFraction: 0.02, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := mega.NewWindow(ev)
	if err != nil {
		log.Fatal(err)
	}

	// Connected components on every snapshot at once. CC ignores the
	// source argument (every vertex seeds its own label).
	labels, err := mega.Evaluate(w, mega.CC, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes, %d initial links, %d snapshots\n\n",
		spec.Vertices, len(ev.Initial), w.NumSnapshots())
	fmt.Printf("%-9s %-12s %-22s\n", "snapshot", "components", "largest component")
	for s, ls := range labels {
		sizes := map[float64]int{}
		for _, l := range ls {
			sizes[l]++
		}
		largest := 0
		for _, n := range sizes {
			if n > largest {
				largest = n
			}
		}
		fmt.Printf("%-9d %-12d %d nodes (%.1f%%)\n",
			s, len(sizes), largest, 100*float64(largest)/float64(len(ls)))
	}

	// Cross-check with the parallel software engine.
	par, err := mega.EvaluateParallel(w, mega.CC, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	for s := range labels {
		for v := range labels[s] {
			if labels[s][v] != par[s][v] {
				log.Fatalf("snapshot %d vertex %d: engines disagree", s, v)
			}
		}
	}
	fmt.Println("\nparallel software engine agrees on every label ✓")

	// And with the cycle-level hardware model, which also reports how the
	// datapath behaved.
	micro, err := mega.SimulateCycleLevel(w, mega.CC, 0, mega.DefaultUarchConfig())
	if err != nil {
		log.Fatal(err)
	}
	for s := range labels {
		for v := range labels[s] {
			if labels[s][v] != micro.SnapshotValues[s][v] {
				log.Fatalf("snapshot %d vertex %d: cycle-level model disagrees", s, v)
			}
		}
	}
	fmt.Printf("cycle-level model agrees ✓ — %d cycles, %d events, %.0f%% PE utilization\n",
		micro.Cycles, micro.Events, micro.Utilization(mega.DefaultUarchConfig())*100)
}
