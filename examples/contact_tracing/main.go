// Contact tracing: the paper's motivating example (§1). A contact graph of
// people evolves day by day as contacts are reported and expire; health
// authorities want, for every daily snapshot, how many people were within
// k hops of patient zero — one BFS query over the whole window rather than
// one BFS per day.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mega"
)

const (
	people   = 5_000
	days     = 14 // snapshots
	contacts = 40_000
	churn    = 0.02 // fraction of contacts changing per day
	hops     = 3    // "within 3 degrees of exposure"
)

func main() {
	ev := buildContactHistory()
	w, err := mega.NewWindow(ev)
	if err != nil {
		log.Fatal(err)
	}

	patientZero := mega.VertexID(0)
	values, err := mega.Evaluate(w, mega.BFS, patientZero)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("contact graph: %d people, %d initial contacts, %d daily snapshots\n\n",
		people, len(ev.Initial), days)
	fmt.Printf("%-6s %-22s %-22s\n", "day", "reachable from case 0", fmt.Sprintf("within %d hops", hops))
	prev := 0
	for day, vals := range values {
		reachable, close := 0, 0
		for _, v := range vals {
			if !math.IsInf(v, 1) {
				reachable++
				if v <= hops {
					close++
				}
			}
		}
		trend := ""
		if day > 0 {
			trend = fmt.Sprintf("(%+d)", close-prev)
		}
		prev = close
		fmt.Printf("%-6d %-22d %d %s\n", day, reachable, close, trend)
	}
}

// buildContactHistory synthesizes two weeks of contact reports. Contacts
// expire (deletions) and new ones appear (additions); each contact is
// touched at most once in the window, matching the CommonGraph invariant.
func buildContactHistory() *mega.Evolution {
	r := rand.New(rand.NewSource(7))
	seen := map[uint64]bool{}
	contact := func() mega.Edge {
		for {
			a, b := mega.VertexID(r.Intn(people)), mega.VertexID(r.Intn(people))
			if a == b {
				continue
			}
			key := uint64(a)<<32 | uint64(b)
			if seen[key] {
				continue
			}
			seen[key] = true
			return mega.Edge{Src: a, Dst: b, Weight: 1}
		}
	}

	// Initial contacts: random pairs plus a chain through patient zero's
	// household so the epicenter is connected.
	initial := make(mega.EdgeList, 0, contacts)
	for i := 0; i < contacts; i++ {
		initial = append(initial, contact())
	}
	for i := 0; i < 8; i++ {
		e := mega.Edge{Src: 0, Dst: mega.VertexID(1 + r.Intn(people-1)), Weight: 1}
		key := uint64(e.Src)<<32 | uint64(e.Dst)
		if !seen[key] {
			seen[key] = true
			initial = append(initial, e)
		}
	}
	initial = initial.Normalize()

	perDay := int(float64(len(initial)) * churn / 2)
	ev := &mega.Evolution{NumVertices: people, Initial: initial}
	expired := map[uint64]bool{}
	for day := 0; day < days-1; day++ {
		adds := make(mega.EdgeList, 0, perDay)
		for i := 0; i < perDay; i++ {
			adds = append(adds, contact())
		}
		dels := make(mega.EdgeList, 0, perDay)
		for len(dels) < perDay {
			e := initial[r.Intn(len(initial))]
			key := uint64(e.Src)<<32 | uint64(e.Dst)
			if expired[key] {
				continue
			}
			expired[key] = true
			dels = append(dels, e)
		}
		ev.Adds = append(ev.Adds, adds.Normalize())
		ev.Dels = append(ev.Dels, dels.Normalize())
	}
	return ev
}
