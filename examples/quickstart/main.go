// Quickstart: evaluate a single-source shortest-path query over every
// snapshot of a small evolving graph, then compare the MEGA accelerator's
// simulated workflows against the JetStream streaming baseline.
package main

import (
	"fmt"
	"log"

	"mega"
)

func main() {
	// 1. Synthesize an evolving graph: an R-MAT base snapshot and 8
	//    snapshots produced by batches that each change 1% of the edges
	//    (half additions, half deletions).
	spec := mega.GraphSpec{
		Name: "quickstart", Vertices: 2_048, Edges: 32_768,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 1,
	}
	ev, err := mega.Evolve(spec, mega.EvolutionSpec{
		Snapshots: 8, BatchFraction: 0.01, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Decompose the window into CommonGraph + addition-only batches.
	w, err := mega.NewWindow(ev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window: %d snapshots, CommonGraph %d edges, %d addition batches\n",
		w.NumSnapshots(), len(w.Common()), len(w.Batches()))

	// 3. Evaluate SSSP from vertex 0 on every snapshot at once (the BOE
	//    schedule underneath), collecting execution statistics.
	var stats mega.Stats
	values, err := mega.Evaluate(w, mega.SSSP, 0, &stats)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine: %d events, %d edge reads (%d reused across snapshots)\n\n",
		stats.Events, stats.EdgesRead, stats.SharedEdges)

	fmt.Println("shortest-path distance from vertex 0 to vertex 100, per snapshot:")
	for s, vals := range values {
		fmt.Printf("  snapshot %d: %g\n", s, vals[100])
	}

	// 4. Simulate the accelerator: JetStream baseline vs MEGA workflows.
	js, err := mega.SimulateJetStream(ev, mega.SSSP, 0, mega.JetStreamSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nJetStream baseline: %.4f ms\n", js.TimeMs)
	for _, mode := range []mega.ScheduleMode{mega.DirectHop, mega.WorkSharing, mega.BOE} {
		r, err := mega.Simulate(w, mega.SSSP, 0, mode, mega.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %.4f ms (%.2fx), with batch pipelining %.4f ms (%.2fx)\n",
			mode, r.TimeMs, r.SpeedupNoBP(js), r.TimeMsBP, r.Speedup(js))
	}
}
