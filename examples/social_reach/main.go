// Social reach: track how an influencer's reach changes as a social
// network evolves. Two queries over the same 12-snapshot window:
//
//   - Viterbi (most-probable path): the probability that a message from
//     the influencer reaches a user through the strongest chain of
//     reshares, where each edge weight models attenuation.
//   - SSWP (widest path): the bottleneck strength of the best connection.
//
// Both run on all snapshots simultaneously via Batch-Oriented Execution,
// and the example ends with the workflow comparison the paper's Table 4
// makes.
package main

import (
	"fmt"
	"log"
	"sort"

	"mega"
)

func main() {
	spec := mega.GraphSpec{
		Name: "social", Vertices: 8_192, Edges: 131_072,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 8, Seed: 4,
	}
	ev, err := mega.Evolve(spec, mega.EvolutionSpec{
		Snapshots: 12, BatchFraction: 0.01, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := mega.NewWindow(ev)
	if err != nil {
		log.Fatal(err)
	}

	influencer := hub(ev)
	fmt.Printf("social graph: %d users, %d follows, influencer = user %d\n\n",
		spec.Vertices, len(ev.Initial), influencer)

	probs, err := mega.Evaluate(w, mega.Viterbi, influencer)
	if err != nil {
		log.Fatal(err)
	}
	widths, err := mega.Evaluate(w, mega.SSWP, influencer)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-9s %-16s %-18s %-16s\n",
		"snapshot", "users reached", "reach p>=1e-3", "median best prob")
	for s := range probs {
		reached, strong := 0, 0
		var nonzero []float64
		for _, p := range probs[s] {
			if p > 0 {
				reached++
				nonzero = append(nonzero, p)
				if p >= 1e-3 {
					strong++
				}
			}
		}
		sort.Float64s(nonzero)
		median := 0.0
		if len(nonzero) > 0 {
			median = nonzero[len(nonzero)/2]
		}
		fmt.Printf("%-9d %-16d %-18d %.2e\n", s, reached, strong, median)
	}

	// Bottleneck strength to one specific user across the window.
	target := mega.VertexID(spec.Vertices / 3)
	fmt.Printf("\nbottleneck connection strength to user %d per snapshot:\n  ", target)
	for s := range widths {
		fmt.Printf("%.0f ", widths[s][target])
	}
	fmt.Println()

	// Workflow comparison on this workload.
	js, err := mega.SimulateJetStream(ev, mega.Viterbi, influencer, mega.JetStreamSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkflows on Viterbi (JetStream baseline %.4f ms):\n", js.TimeMs)
	for _, mode := range []mega.ScheduleMode{mega.DirectHop, mega.WorkSharing, mega.BOE} {
		r, err := mega.Simulate(w, mega.Viterbi, influencer, mode, mega.DefaultSimConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v %.4f ms → %.2fx (BP: %.2fx)\n",
			mode, r.TimeMs, r.SpeedupNoBP(js), r.Speedup(js))
	}
}

func hub(ev *mega.Evolution) mega.VertexID {
	deg := make(map[mega.VertexID]int)
	var best mega.VertexID
	for _, e := range ev.Initial {
		deg[e.Src]++
		if deg[e.Src] > deg[best] {
			best = e.Src
		}
	}
	return best
}
