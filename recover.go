package mega

import (
	"context"
	"errors"
	"runtime/debug"
	"time"

	"mega/internal/algo"
	"mega/internal/ckptstore"
	"mega/internal/engine"
	"mega/internal/fault"
	"mega/internal/gen"
	"mega/internal/megaerr"
	"mega/internal/metrics"
	"mega/internal/sched"
)

// Fault-injection surface (internal/fault re-exported). A FaultPlan is a
// deterministic, seeded schedule of injectable failures — transient
// errors, panics, cancellations, latency spikes — that fire at named
// execution sites on exact visit counts. Carry one into any Context
// variant with WithFaultPlan; runs without a plan pay a single nil check
// per site.
type (
	// FaultPlan is a deterministic fault-injection schedule.
	FaultPlan = fault.Plan
	// FaultOp is one injectable fault of a plan.
	FaultOp = fault.Op
)

// NewFaultPlan returns an empty plan whose probabilistic ops draw from
// the given seed.
func NewFaultPlan(seed int64) *FaultPlan { return fault.NewPlan(seed) }

// WithFaultPlan attaches a fault plan to a context; every Context variant
// of this package consults it at its execution sites.
func WithFaultPlan(ctx context.Context, p *FaultPlan) context.Context {
	return fault.Inject(ctx, p)
}

// ParseFaultOp parses the "site[#shard]:kind[=latency]@visit[xevery]"
// grammar, e.g. "engine.round:transient@120" or "parallel.phase#2:panic@3".
func ParseFaultOp(spec string) (FaultOp, error) { return fault.ParseOp(spec) }

// FaultPlanFromContext returns the fault plan carried by ctx, or nil —
// useful for handing a request's plan to components configured outside
// the context flow (e.g. a checkpoint store's io seam).
func FaultPlanFromContext(ctx context.Context) *FaultPlan { return fault.From(ctx) }

// Transient/checkpoint error contract (see the package error contract).
var (
	// ErrTransient marks retryable faults; a run aborted by one can be
	// resumed from its last checkpoint.
	ErrTransient = megaerr.ErrTransient
	// ErrCheckpoint reports corrupt or mismatched checkpoint bytes.
	ErrCheckpoint = megaerr.ErrCheckpoint
)

type (
	// TransientError carries the site and cause of a retryable fault.
	TransientError = megaerr.TransientError
	// CheckpointError carries the reason checkpoint bytes were rejected.
	CheckpointError = megaerr.CheckpointError
)

// IsTransient reports whether err is worth retrying — equivalent to
// errors.Is(err, ErrTransient).
func IsTransient(err error) bool { return megaerr.IsTransient(err) }

// LoadEvolutionContext is LoadEvolution under a lifecycle: a fault plan
// carried by ctx is consulted once per dataset file.
func LoadEvolutionContext(ctx context.Context, dir string) (*Evolution, error) {
	return gen.LoadContext(ctx, dir)
}

// RecoverOptions configures EvaluateRecover's engine and retry policy.
// The zero value evaluates sequentially with checkpoints every 32 rounds
// and up to 3 restarts.
type RecoverOptions struct {
	// Parallel selects the sharded parallel engine; Workers <= 0 uses
	// GOMAXPROCS. After a contained worker panic the retry loop falls
	// back to the sequential engine automatically.
	Parallel bool
	Workers  int

	// CheckpointEvery is the round interval between automatic
	// checkpoints (0 = every 32 rounds). Checkpoints are also taken at
	// every batch boundary.
	CheckpointEvery int

	// MaxRetries bounds how many times a failed attempt is restarted
	// (0 = 3). Non-transient, non-panic failures are never retried.
	MaxRetries int
	// Backoff is the base delay before a retry; attempt n waits
	// (n+1)×Backoff (0 = 5ms). The wait respects ctx cancellation.
	Backoff time.Duration

	// Limits configures the divergence watchdog (zero = safe defaults).
	Limits Limits

	// Checkpoint, when non-nil, resumes the first attempt from these
	// checkpoint bytes instead of starting fresh.
	Checkpoint []byte
	// SeedBase, when non-nil, primes each fresh attempt with this
	// precomputed converged CommonGraph solution so the engine skips its
	// base solve (stable-vertex seeding). The values must be the exact
	// converged solution for the query's algorithm, source, and
	// CommonGraph content; a checkpoint restore overrides the seed.
	SeedBase []float64
	// Sink, when non-nil, receives every automatic checkpoint (e.g. to
	// persist it atomically to disk). A sink error aborts the run.
	Sink func([]byte) error

	// Store, when non-nil, spools every automatic checkpoint durably
	// under StoreID (composing with Sink, which still runs after the
	// store write) and, when Checkpoint is nil, resumes the first attempt
	// from the store's latest good generation. On success the entry is
	// deleted — the checkpoints are obsolete. A store-loaded checkpoint
	// the engine rejects is quarantined and the attempt restarts fresh
	// instead of failing the query.
	Store *ckptstore.Store
	// StoreID keys the query's directory in Store: the window content
	// fingerprint plus algorithm, source, and tenant.
	StoreID ckptstore.QueryID

	// Metrics, when non-nil, receives the retry loop's counters
	// (recover_attempts, recover_resumes, recover_backoff_waits,
	// recover_fallbacks) and, from the successful attempt's engine, the
	// engine-level counter families and queue audits.
	Metrics *MetricsRegistry
}

// Recovery reports what EvaluateRecover's retry loop did.
type Recovery struct {
	// Attempts counts engine runs, including the successful one.
	Attempts int
	// Resumes counts attempts that restored a checkpoint (rather than
	// restarting from scratch).
	Resumes int
	// FellBack is true when a worker panic demoted the run from the
	// parallel engine to the sequential one.
	FellBack bool
	// DurableResume is true when the first attempt restored a checkpoint
	// loaded from the durable store (RecoverOptions.Store) — the query
	// picked up where a previous process left off.
	DurableResume bool
	// Faults records the error of every failed attempt, in order.
	Faults []string
	// Base is the successful attempt's converged CommonGraph solution
	// (nil on error). The query service caches it as seeding material for
	// future overlapping queries.
	Base []float64
}

// sleepRetry waits for the backoff duration or until ctx is done,
// returning the context's error on cancellation. It is a package-private
// hook so retry tests can replace the real clock with a recorder and run
// instantly; the default is the real timer.
var sleepRetry = func(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// resumableEngine is the checkpoint surface shared by both engines.
type resumableEngine interface {
	RunContext(ctx context.Context, s *Schedule, lim Limits) error
	SnapshotValues(s *Schedule, snap int) []float64
	SetCheckpointEvery(n int)
	SetCheckpointSink(sink func([]byte) error)
	Restore(data []byte) error
	LastCheckpoint() []byte
	SetMetrics(reg *metrics.Registry)
	SeedBase(base []float64) error
	BaseValues() []float64
}

// EvaluateRecover evaluates the query like EvaluateContext but survives
// transient faults and worker panics: the run checkpoints automatically
// (every CheckpointEvery rounds and at batch boundaries), and on a
// retryable failure a fresh engine resumes from the last checkpoint after
// a short backoff. A panic inside the parallel engine demotes the retry
// to the sequential engine, resuming from the same checkpoint —
// checkpoints are engine-portable. The returned Recovery describes what
// happened; it is non-nil even on error.
func EvaluateRecover(ctx context.Context, w *Window, k AlgorithmKind, source VertexID, mode ScheduleMode, opt RecoverOptions) ([][]float64, *Recovery, error) {
	every := opt.CheckpointEvery
	if every <= 0 {
		every = 32
	}
	retries := opt.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	backoff := opt.Backoff
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}

	s, err := sched.New(sched.Mode(mode), w)
	if err != nil {
		return nil, &Recovery{}, err
	}
	a := algo.New(k)
	parallel := opt.Parallel
	lastCkpt := opt.Checkpoint
	rec := &Recovery{}

	// Durable spooling: checkpoints flow to the store first, then to the
	// caller's sink. An explicit opt.Checkpoint outranks the store's
	// latest generation; otherwise the first attempt resumes durably.
	sink := opt.Sink
	var storeGen uint64
	fromStore := false
	if opt.Store != nil {
		storeSink := opt.Store.Sink(opt.StoreID)
		if user := opt.Sink; user != nil {
			sink = func(ckpt []byte) error {
				if err := storeSink(ckpt); err != nil {
					return err
				}
				return user(ckpt)
			}
		} else {
			sink = storeSink
		}
		if lastCkpt == nil {
			data, gen, lerr := opt.Store.Load(opt.StoreID)
			if lerr != nil {
				return nil, rec, lerr
			}
			if data != nil {
				lastCkpt, storeGen, fromStore = data, gen, true
			}
		}
	}

	for {
		rec.Attempts++
		if opt.Metrics != nil {
			opt.Metrics.Counter("recover_attempts").Inc()
		}
		var eng resumableEngine
		if parallel {
			eng, err = engine.NewParallel(w, a, source, opt.Workers)
		} else {
			eng, err = engine.NewMulti(w, a, source, nil)
		}
		if err != nil {
			return nil, rec, err
		}
		// Attach the registry to every attempt: the engines record their
		// counter families only at successful completion, so failed
		// attempts contribute the retry-loop counters but no engine rows.
		eng.SetMetrics(opt.Metrics)
		eng.SetCheckpointEvery(every)
		if sink != nil {
			eng.SetCheckpointSink(sink)
		}
		if opt.SeedBase != nil && lastCkpt == nil {
			// Stable-vertex seeding: skip the base solve. Only on fresh
			// starts — a checkpoint carries its own (post-seed) state.
			if err := eng.SeedBase(opt.SeedBase); err != nil {
				return nil, rec, err
			}
		}
		if lastCkpt != nil {
			if err := eng.Restore(lastCkpt); err != nil {
				if fromStore {
					// The durable checkpoint passed the store's CRC gate
					// but does not fit this engine (stale schema or an
					// identity-fold collision): quarantine it and restart
					// fresh rather than failing the query.
					_ = opt.Store.Quarantine(opt.StoreID, storeGen)
					rec.Faults = append(rec.Faults, err.Error())
					fromStore = false
					lastCkpt = nil
					continue
				}
				// Corrupt or mismatched checkpoint: unrecoverable input.
				return nil, rec, err
			}
			if fromStore {
				fromStore = false
				rec.DurableResume = true
				if opt.Metrics != nil {
					opt.Metrics.Counter("recover_durable_resumes").Inc()
				}
			}
			if rec.Attempts > 1 {
				rec.Resumes++
				if opt.Metrics != nil {
					opt.Metrics.Counter("recover_resumes").Inc()
				}
			}
		}

		err = runContained(ctx, eng, s, opt.Limits)
		if err == nil {
			out := make([][]float64, w.NumSnapshots())
			for snap := range out {
				out[snap] = eng.SnapshotValues(s, snap)
			}
			rec.Base = eng.BaseValues()
			if opt.Store != nil {
				// The query completed; its durable checkpoints are
				// obsolete. Best effort — a failed delete only leaves an
				// orphan that a future restart re-runs to the same result.
				if derr := opt.Store.Delete(opt.StoreID); derr != nil {
					rec.Faults = append(rec.Faults, derr.Error())
				}
			}
			return out, rec, nil
		}
		rec.Faults = append(rec.Faults, err.Error())

		// The retained auto-checkpoint was serialized at an earlier
		// consistent barrier, so it is safe even after a mid-phase panic;
		// the engine's live state is not (never call Checkpoint here).
		if ckpt := eng.LastCheckpoint(); ckpt != nil {
			lastCkpt = ckpt
		}

		var wp *WorkerPanicError
		switch {
		case parallel && errors.As(err, &wp):
			// Contained worker panic: demote to the sequential engine and
			// resume. The demotion itself consumes a retry.
			parallel = false
			rec.FellBack = true
			if opt.Metrics != nil {
				opt.Metrics.Counter("recover_fallbacks").Inc()
			}
		case IsTransient(err):
			// Retryable; fall through to the backoff below.
		default:
			return nil, rec, err
		}
		if rec.Attempts > retries {
			return nil, rec, err
		}
		wait := time.Duration(rec.Attempts) * backoff
		if opt.Metrics != nil {
			opt.Metrics.Counter("recover_backoff_waits").Inc()
			opt.Metrics.Histogram("recover_backoff_nanos").Observe(wait.Nanoseconds())
		}
		if serr := sleepRetry(ctx, wait); serr != nil {
			return nil, rec, &megaerr.CanceledError{Phase: "recovery backoff", Err: serr}
		}
	}
}

// runContained runs the engine, converting any panic that escapes it into
// a *WorkerPanicError so the retry loop can treat sequential-engine
// panics (e.g. injected ones) like contained parallel worker panics.
func runContained(ctx context.Context, eng resumableEngine, s *Schedule, lim Limits) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &megaerr.WorkerPanicError{Shard: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return eng.RunContext(ctx, s, lim)
}
