package mega_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mega"
	"mega/internal/testutil"
)

func eightSnapshotWindow(t testing.TB) *mega.Window {
	t.Helper()
	spec := mega.GraphSpec{
		Name: "lifecycle", Vertices: 1 << 10, Edges: 12_000,
		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 11,
	}
	ev, err := mega.Evolve(spec, mega.EvolutionSpec{Snapshots: 8, BatchFraction: 0.01, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	w, err := mega.NewWindow(ev)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEvaluateParallelContextCanceled checks the public cancellation
// contract: a canceled context makes EvaluateParallelContext return an
// error matching both mega.ErrCanceled and context.Canceled, with every
// worker goroutine joined before it returns.
func TestEvaluateParallelContextCanceled(t *testing.T) {
	w := eightSnapshotWindow(t)
	testutil.NoGoroutineLeak(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mega.EvaluateParallelContext(ctx, w, mega.SSSP, 0, 4)
	if !errors.Is(err, mega.ErrCanceled) {
		t.Fatalf("err = %v, want mega.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled to match too", err)
	}
	var ce *mega.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err %v is not a *mega.CanceledError", err)
	}
}

// TestEvaluateContextDeadline checks deadline expiry surfaces the same
// contract as explicit cancellation.
func TestEvaluateContextDeadline(t *testing.T) {
	w := eightSnapshotWindow(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := mega.EvaluateContext(ctx, w, mega.SSSP, 0)
	if !errors.Is(err, mega.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled and DeadlineExceeded", err)
	}
}

// TestContextVariantsMatchPlainRuns checks the lifecycle plumbing does not
// disturb results: a Background-context run equals the plain API's.
func TestContextVariantsMatchPlainRuns(t *testing.T) {
	w := eightSnapshotWindow(t)
	plain, err := mega.Evaluate(w, mega.SSWP, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctxd, err := mega.EvaluateContext(context.Background(), w, mega.SSWP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(ctxd) {
		t.Fatalf("snapshot counts differ: %d vs %d", len(plain), len(ctxd))
	}
	for s := range plain {
		for v := range plain[s] {
			if plain[s][v] != ctxd[s][v] {
				t.Fatalf("snapshot %d vertex %d: %v vs %v", s, v, plain[s][v], ctxd[s][v])
			}
		}
	}
}

// TestDefaultLimitsShape sanity-checks the advertised watchdog defaults.
func TestDefaultLimitsShape(t *testing.T) {
	w := eightSnapshotWindow(t)
	lim := mega.DefaultLimits(w)
	if lim.MaxRounds != 2*w.NumVertices()+64 {
		t.Errorf("MaxRounds = %d, want 2V+64", lim.MaxRounds)
	}
	if lim.MaxEvents <= 0 {
		t.Errorf("MaxEvents = %d, want positive", lim.MaxEvents)
	}
}
