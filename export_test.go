package mega

import (
	"context"
	"time"
)

// SetRetrySleep replaces EvaluateRecover's backoff wait with fn and
// returns a restore func. Test-only: lets retry tests observe the exact
// backoff schedule and run without real sleeps.
func SetRetrySleep(fn func(context.Context, time.Duration) error) (restore func()) {
	prev := sleepRetry
	sleepRetry = fn
	return func() { sleepRetry = prev }
}
