// Package mega is a from-scratch reproduction of "MEGA: Evolving Graph
// Accelerator" (MICRO 2023): a library for evaluating iterative graph
// queries over windows of evolving-graph snapshots, together with a
// cycle-level simulator of the MEGA accelerator and its JetStream
// streaming baseline.
//
// The core ideas, all implemented here:
//
//   - CommonGraph: a window of N snapshots is stored as the edges common
//     to all snapshots plus addition-only batches, eliminating expensive
//     deletion processing (Window, NewWindow).
//   - The unified evolving-graph CSR: one union CSR with per-edge
//     snapshot-membership tags (Window.Unified).
//   - Execution schedules: Direct-Hop, Work-Sharing, and MEGA's
//     Batch-Oriented Execution with its shared-computation broadcast and
//     shared edge fetches (NewSchedule).
//   - An event-driven, delta-accumulative functional engine for the five
//     paper algorithms — BFS, SSSP, SSWP, SSNP, Viterbi (Evaluate, Solve).
//   - A timing simulator that charges the accelerator's datapath —
//     PEs, coalescing event queue, NoC, edge cache, DRAM, partitioning,
//     batch pipelining (Simulate, SimulateJetStream).
//
// # Quick start
//
//	spec := mega.GraphSpec{Name: "demo", Vertices: 1 << 12, Edges: 1 << 16,
//		A: 0.45, B: 0.15, C: 0.15, MaxWeight: 16, Seed: 1}
//	ev, _ := mega.Evolve(spec, mega.EvolutionSpec{Snapshots: 8, BatchFraction: 0.01, Seed: 2})
//	w, _ := mega.NewWindow(ev)
//	values, _ := mega.Evaluate(w, mega.SSSP, 0) // per-snapshot SSSP results
//
// Deeper control lives in the same package: build schedules explicitly,
// run the simulator with a custom Config, or compare against the
// JetStream baseline.
package mega

import (
	"context"

	"mega/internal/algo"
	"mega/internal/engine"
	"mega/internal/evolve"
	"mega/internal/gen"
	"mega/internal/graph"
	"mega/internal/megaerr"
	"mega/internal/sched"
	"mega/internal/sim"
	"mega/internal/uarch"
)

// Error contract. Every failure returned by this package matches exactly
// one of these sentinels under errors.Is:
//
//   - ErrInvalidInput — malformed graphs, schedules, configurations or
//     input files; retrying cannot help.
//   - ErrCanceled — a Context variant observed ctx cancellation or
//     deadline expiry; errors.Is also matches the underlying
//     context.Canceled / context.DeadlineExceeded.
//   - ErrDivergence — the divergence watchdog aborted a run whose
//     Algorithm failed to converge (errors.As against *DivergenceError
//     recovers the diagnostic counters).
//
// A panic inside a parallel worker is contained and surfaced as a
// *WorkerPanicError (errors.As) instead of crashing the process.
var (
	// ErrCanceled reports cooperative cancellation.
	ErrCanceled = megaerr.ErrCanceled
	// ErrDivergence reports a tripped divergence watchdog.
	ErrDivergence = megaerr.ErrDivergence
	// ErrInvalidInput reports a rejected input or configuration.
	ErrInvalidInput = megaerr.ErrInvalidInput
)

// Typed errors (use errors.As).
type (
	// CanceledError carries the phase at which cancellation was observed.
	CanceledError = megaerr.CanceledError
	// DivergenceError carries the watchdog's diagnostic counters.
	DivergenceError = megaerr.DivergenceError
	// WorkerPanicError carries a contained parallel-worker panic.
	WorkerPanicError = megaerr.WorkerPanicError
)

// Limits configures the divergence watchdog of the Context variants.
// The zero value selects safe defaults derived from the problem size.
type Limits = engine.Limits

// Unlimited disables one Limits bound.
const Unlimited = engine.Unlimited

// DefaultLimits returns the watchdog bounds a zero Limits resolves to for
// the window.
func DefaultLimits(w *Window) Limits {
	return engine.DefaultLimits(w.NumVertices(), w.NumSnapshots())
}

// Graph types.
type (
	// Graph is an immutable CSR graph.
	Graph = graph.CSR
	// Edge is a directed weighted edge.
	Edge = graph.Edge
	// EdgeList is a set of edges with set-algebra helpers.
	EdgeList = graph.EdgeList
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// UnifiedCSR is the unified evolving-graph representation (Fig. 6).
	UnifiedCSR = graph.UnifiedCSR
	// SnapshotMask is a bitmask of snapshot indexes.
	SnapshotMask = graph.SnapshotMask
)

// Evolving-graph types.
type (
	// Window is a CommonGraph-decomposed group of snapshots.
	Window = evolve.Window
	// Batch is one addition-only batch of the window.
	Batch = evolve.Batch
	// Evolution is a generated evolving-graph history.
	Evolution = gen.Evolution
	// GraphSpec describes a synthetic R-MAT graph.
	GraphSpec = gen.GraphSpec
	// EvolutionSpec describes a synthetic evolution.
	EvolutionSpec = gen.EvolutionSpec
)

// Execution types.
type (
	// Algorithm is the DAIC contract of one query.
	Algorithm = algo.Algorithm
	// AlgorithmKind enumerates the built-in algorithms.
	AlgorithmKind = algo.Kind
	// Schedule is an ordered operation list over value contexts.
	Schedule = sched.Schedule
	// ScheduleMode selects Direct-Hop, Work-Sharing or BOE.
	ScheduleMode = sched.Mode
	// Stats are exact functional execution counts.
	Stats = engine.Stats
	// Probe observes engine execution.
	Probe = engine.Probe
	// SimConfig holds the simulated machine's parameters.
	SimConfig = sim.Config
	// SimResult is a simulated run's timing and counts.
	SimResult = sim.Result
)

// Algorithms (Table 1), plus the CC extension (self-seeding connected
// components, demonstrating §3.2's generality claim).
const (
	BFS     = algo.BFS
	SSSP    = algo.SSSP
	SSWP    = algo.SSWP
	SSNP    = algo.SSNP
	Viterbi = algo.Viterbi
	CC      = algo.CC
)

// Schedule modes.
const (
	DirectHop   = sched.DirectHop
	WorkSharing = sched.WorkSharing
	BOE         = sched.BOE
)

// NewGraph builds an immutable CSR graph.
func NewGraph(numVertices int, edges []Edge) (*Graph, error) {
	return graph.NewCSR(numVertices, edges)
}

// NewWindow decomposes a generated evolution into CommonGraph + batches.
func NewWindow(ev *Evolution) (*Window, error) {
	return evolve.NewWindow(ev)
}

// NewWindowFromParts builds a Window from an initial snapshot and per-hop
// addition/deletion batches. See evolve.NewWindowFromParts for the
// required disjointness invariant.
func NewWindowFromParts(numVertices, snapshots int, initial EdgeList, adds, dels []EdgeList) (*Window, error) {
	return evolve.NewWindowFromParts(numVertices, snapshots, initial, adds, dels)
}

// Evolve synthesizes an evolving-graph history.
func Evolve(gspec GraphSpec, espec EvolutionSpec) (*Evolution, error) {
	return gen.Evolve(gspec, espec)
}

// PaperGraphs returns the scaled stand-ins for the paper's six inputs.
func PaperGraphs() []GraphSpec { return gen.PaperGraphs }

// SaveEvolution writes an evolution dataset as a plain-text directory.
func SaveEvolution(ev *Evolution, dir string) error { return ev.Save(dir) }

// LoadEvolution reads a dataset previously written by SaveEvolution.
func LoadEvolution(dir string) (*Evolution, error) { return gen.Load(dir) }

// LoadEdgeList reads a SNAP-style "src dst [weight]" edge-list file,
// densely remapping vertex IDs.
func LoadEdgeList(path string, defaultWeight float64) (int, EdgeList, error) {
	return gen.LoadEdgeList(path, defaultWeight)
}

// EvolveFromEdges synthesizes an evolving-graph history from a fixed
// (e.g. real-world) edge set, as the paper's §5.1 does: a reserved subset
// arrives as additions over the window, sampled edges leave as deletions.
func EvolveFromEdges(numVertices int, edges EdgeList, espec EvolutionSpec) (*Evolution, error) {
	return gen.EvolveFromEdgeList(numVertices, edges, espec)
}

// SimulateRecompute runs the naive baseline: a from-scratch solve of every
// snapshot on the accelerator.
func SimulateRecompute(w *Window, k AlgorithmKind, source VertexID, cfg SimConfig) (*SimResult, error) {
	return sim.RunRecompute(w, k, source, cfg)
}

// SimulateRecomputeContext is SimulateRecompute under a lifecycle: ctx is
// checked before each snapshot solve and at every round inside it.
func SimulateRecomputeContext(ctx context.Context, w *Window, k AlgorithmKind, source VertexID, cfg SimConfig) (*SimResult, error) {
	return sim.RunRecomputeContext(ctx, w, k, source, cfg)
}

// Cycle-level simulation types (internal/uarch): a per-cycle
// microarchitectural model of the BOE datapath that executes the query
// through explicit components, cross-validating the aggregate model.
type (
	// UarchConfig holds the microarchitectural parameters.
	UarchConfig = uarch.Config
	// UarchResult is a cycle-level run's outcome.
	UarchResult = uarch.Result
)

// DefaultUarchConfig mirrors DefaultSimConfig at cycle granularity.
func DefaultUarchConfig() UarchConfig { return uarch.DefaultConfig() }

// SimulateCycleLevel runs the BOE workflow on the cycle-by-cycle
// microarchitectural simulator.
func SimulateCycleLevel(w *Window, k AlgorithmKind, source VertexID, cfg UarchConfig) (*UarchResult, error) {
	return uarch.Run(w, k, source, cfg)
}

// SimulateCycleLevelContext is SimulateCycleLevel under a lifecycle: ctx
// is checked every 1024 simulated cycles, and cfg.MaxCycles (defaulted
// from the problem size when zero) bounds the run.
func SimulateCycleLevelContext(ctx context.Context, w *Window, k AlgorithmKind, source VertexID, cfg UarchConfig) (*UarchResult, error) {
	return uarch.RunContext(ctx, w, k, source, cfg)
}

// UarchStreamResult is the cycle-level streaming baseline's outcome.
type UarchStreamResult = uarch.StreamResult

// SimulateStreamCycleLevel runs the JetStream streaming baseline —
// including its phased deletion invalidation — on the cycle-by-cycle
// microarchitectural simulator.
func SimulateStreamCycleLevel(ev *Evolution, k AlgorithmKind, source VertexID, cfg UarchConfig) (*UarchStreamResult, error) {
	return uarch.RunStream(ev, k, source, cfg)
}

// SimulateStreamCycleLevelContext is SimulateStreamCycleLevel under a
// lifecycle: ctx is checked every 1024 simulated cycles and before every
// evolution hop.
func SimulateStreamCycleLevelContext(ctx context.Context, ev *Evolution, k AlgorithmKind, source VertexID, cfg UarchConfig) (*UarchStreamResult, error) {
	return uarch.RunStreamContext(ctx, ev, k, source, cfg)
}

// NewAlgorithm returns the Algorithm implementation for a kind.
func NewAlgorithm(k AlgorithmKind) Algorithm { return algo.New(k) }

// ParseAlgorithm converts a name such as "SSSP" to its kind.
func ParseAlgorithm(name string) (AlgorithmKind, error) { return algo.ParseKind(name) }

// Algorithms lists all built-in algorithm kinds.
func Algorithms() []AlgorithmKind { return algo.All }

// NewSchedule generates a schedule for the window under the given mode.
func NewSchedule(mode ScheduleMode, w *Window) (*Schedule, error) {
	return sched.New(mode, w)
}

// Solve computes the query fixpoint on a static graph with the
// event-driven engine. probe may be nil.
func Solve(g *Graph, k AlgorithmKind, source VertexID, probe Probe) []float64 {
	if probe == nil {
		probe = engine.NopProbe{}
	}
	return engine.Solve(g, algo.New(k), source, probe)
}

// SolveContext is Solve under a lifecycle: ctx is checked every round, and
// lim (zero value = safe defaults) bounds the fixpoint iteration.
func SolveContext(ctx context.Context, g *Graph, k AlgorithmKind, source VertexID, probe Probe, lim Limits) ([]float64, error) {
	if probe == nil {
		probe = engine.NopProbe{}
	}
	return engine.SolveContext(ctx, g, algo.New(k), source, probe, lim)
}

// Evaluate answers the evolving-graph query functionally: it runs the BOE
// schedule on the window and returns one value array per snapshot. probe
// may be used to collect execution statistics; pass nil to discard them.
func Evaluate(w *Window, k AlgorithmKind, source VertexID, probe ...Probe) ([][]float64, error) {
	return EvaluateContext(context.Background(), w, k, source, probe...)
}

// EvaluateContext is Evaluate under a lifecycle: ctx is checked at every
// batch and round boundary, and the divergence watchdog (safe defaults,
// see DefaultLimits) bounds the run. Use EvaluateLimits to tune it.
func EvaluateContext(ctx context.Context, w *Window, k AlgorithmKind, source VertexID, probe ...Probe) ([][]float64, error) {
	return EvaluateLimits(ctx, w, k, source, Limits{}, probe...)
}

// EvaluateLimits is EvaluateContext with an explicit watchdog
// configuration (zero fields take defaults; Unlimited disables a bound).
func EvaluateLimits(ctx context.Context, w *Window, k AlgorithmKind, source VertexID, lim Limits, probe ...Probe) ([][]float64, error) {
	var p Probe = engine.NopProbe{}
	if len(probe) > 0 && probe[0] != nil {
		p = probe[0]
	}
	s, err := sched.New(sched.BOE, w)
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewMulti(w, algo.New(k), source, p)
	if err != nil {
		return nil, err
	}
	if err := eng.RunContext(ctx, s, lim); err != nil {
		return nil, err
	}
	out := make([][]float64, w.NumSnapshots())
	for snap := range out {
		out[snap] = eng.SnapshotValues(s, snap)
	}
	return out, nil
}

// EvaluateMultiSource answers several same-window, same-algorithm queries
// with different source vertices in one engine run: the BOE schedule is
// expanded so every source gets its own context block while the batch
// streams each addition batch's edges (and their adjacency fetches) once
// for all sources. Results are index-aligned with sources and
// Float64bits-identical to running EvaluateContext per source. The query
// service's multi-source batching is built on this.
func EvaluateMultiSource(ctx context.Context, w *Window, k AlgorithmKind, sources []VertexID, lim Limits) ([][][]float64, error) {
	s, err := sched.New(sched.BOE, w)
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewMultiSource(w, algo.New(k), sources, nil)
	if err != nil {
		return nil, err
	}
	if err := eng.RunContext(ctx, s, lim); err != nil {
		return nil, err
	}
	out := make([][][]float64, len(sources))
	for i := range sources {
		out[i] = make([][]float64, w.NumSnapshots())
		for snap := range out[i] {
			out[i][snap] = eng.SnapshotValuesFor(s, i, snap)
		}
	}
	return out, nil
}

// EvaluateParallel is Evaluate on the goroutine-parallel software engine
// (the paper's "software BOE", §5.2): vertex-sharded workers exchange
// events through mailboxes with a barrier per round. workers <= 0 selects
// GOMAXPROCS. Results are identical to Evaluate's.
func EvaluateParallel(w *Window, k AlgorithmKind, source VertexID, workers int) ([][]float64, error) {
	return EvaluateParallelContext(context.Background(), w, k, source, workers)
}

// EvaluateParallelContext is EvaluateParallel under a lifecycle: ctx is
// checked at every barrier round (cancellation returns within one round,
// with all workers joined), worker panics surface as *WorkerPanicError,
// and the divergence watchdog bounds the run.
func EvaluateParallelContext(ctx context.Context, w *Window, k AlgorithmKind, source VertexID, workers int) ([][]float64, error) {
	s, err := sched.New(sched.BOE, w)
	if err != nil {
		return nil, err
	}
	eng, err := engine.NewParallel(w, algo.New(k), source, workers)
	if err != nil {
		return nil, err
	}
	if err := eng.RunContext(ctx, s, Limits{}); err != nil {
		return nil, err
	}
	out := make([][]float64, w.NumSnapshots())
	for snap := range out {
		out[snap] = eng.SnapshotValues(s, snap)
	}
	return out, nil
}

// DefaultSimConfig returns the MEGA machine configuration (Table 3,
// scaled); JetStreamSimConfig returns the streaming baseline's.
func DefaultSimConfig() SimConfig   { return sim.DefaultConfig() }
func JetStreamSimConfig() SimConfig { return sim.JetStreamConfig() }

// Simulate runs the MEGA accelerator simulation of a workflow over the
// window and returns timing, memory-system and functional statistics.
func Simulate(w *Window, k AlgorithmKind, source VertexID, mode ScheduleMode, cfg SimConfig) (*SimResult, error) {
	return sim.RunMEGA(w, k, source, mode, cfg)
}

// SimulateContext is Simulate under a lifecycle: ctx is checked at every
// batch and round boundary and the divergence watchdog bounds the run.
func SimulateContext(ctx context.Context, w *Window, k AlgorithmKind, source VertexID, mode ScheduleMode, cfg SimConfig) (*SimResult, error) {
	return sim.RunMEGAContext(ctx, w, k, source, mode, cfg)
}

// SimulateJetStream runs the JetStream streaming baseline over the raw
// evolution (sequential hops with deletion invalidation).
func SimulateJetStream(ev *Evolution, k AlgorithmKind, source VertexID, cfg SimConfig) (*SimResult, error) {
	return sim.RunJetStream(ev, k, source, cfg)
}

// SimulateJetStreamContext is SimulateJetStream under a lifecycle: ctx is
// checked before every evolution hop.
func SimulateJetStreamContext(ctx context.Context, ev *Evolution, k AlgorithmKind, source VertexID, cfg SimConfig) (*SimResult, error) {
	return sim.RunJetStreamContext(ctx, ev, k, source, cfg)
}
