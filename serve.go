package mega

import (
	"context"
	"sync"
	"time"

	"mega/internal/engine"
	"mega/internal/megaerr"
	"mega/internal/serve"
)

// Concurrent query service (internal/serve re-exported). A QueryService
// is a long-lived front door for many concurrent evaluations over shared
// Windows: bounded admission with a priority wait queue, per-query
// deadlines and cancellation, load shedding, a panic breaker that demotes
// queries from the parallel to the sequential engine, and a graceful
// drain on Close. Every admitted query runs through EvaluateRecover, so
// transient faults retry from checkpoints and worker panics are contained.
type (
	// QueryService is the concurrent query service; construct with
	// NewQueryService.
	QueryService = serve.Service
	// QueryRequest describes one query submitted to the service.
	QueryRequest = serve.Request
	// QueryResult is a successful query's values and execution report.
	QueryResult = serve.Result
	// QueryReport describes how the service executed one query.
	QueryReport = serve.Report
	// QueryPriority orders the wait queue and the shed policy.
	QueryPriority = serve.Priority
	// QueryServiceStats is a point-in-time accounting snapshot.
	QueryServiceStats = serve.Stats
	// TenantConfig is one tenant's QoS contract: scheduling weight plus
	// optional per-tenant running/queued caps and a burst allowance.
	TenantConfig = serve.TenantConfig
	// TenantStats is one tenant's slice of the service accounting.
	TenantStats = serve.TenantStats
)

// DefaultTenantName is the tenant untagged requests are accounted under.
const DefaultTenantName = serve.DefaultTenantName

// Query priorities.
const (
	// QueryPriorityLow is sacrificed first under load.
	QueryPriorityLow = serve.PriorityLow
	// QueryPriorityNormal is the default.
	QueryPriorityNormal = serve.PriorityNormal
	// QueryPriorityHigh is served first and can shed queued lower-priority
	// requests when the queue is full.
	QueryPriorityHigh = serve.PriorityHigh
)

// Overload contract: requests refused by admission control match
// ErrOverload under errors.Is; errors.As recovers the *OverloadError
// detail (reason, capacity, queue length).
var ErrOverload = megaerr.ErrOverload

// OverloadError carries the admission-control rejection detail.
type OverloadError = megaerr.OverloadError

// ParseQueryPriority converts "low", "normal", or "high" (or "") to its
// QueryPriority.
func ParseQueryPriority(s string) (QueryPriority, error) { return serve.ParsePriority(s) }

// ValidateQueryTenant reports whether s is a well-formed tenant
// identifier ("" selects the default tenant).
func ValidateQueryTenant(s string) error { return serve.ValidateTenant(s) }

// ParseTenantSpec parses one
// "name:weight[:maxrun[:maxqueue[:burst[:cachebytes]]]]" tenant spec (the
// megaserve -tenants grammar).
func ParseTenantSpec(spec string) (string, TenantConfig, error) { return serve.ParseTenantSpec(spec) }

// ServeOptions configures NewQueryService. The zero value serves with
// safe defaults: 4 concurrent runs, a 64-deep wait queue, no default
// deadlines, checkpointed retries per RecoverOptions defaults.
type ServeOptions struct {
	// Capacity bounds concurrently running queries (0 = 4).
	Capacity int
	// QueueDepth bounds waiting queries (0 = 64).
	QueueDepth int
	// DefaultDeadline applies to requests with Deadline == 0 (0 = none).
	DefaultDeadline time.Duration
	// DefaultQueueTimeout applies to requests with QueueTimeout == 0
	// (0 = none).
	DefaultQueueTimeout time.Duration
	// PanicThreshold is how many consecutive parallel-engine panic
	// outcomes demote new queries to the sequential engine (0 = 3).
	PanicThreshold int
	// DemotionPeriod is how long demotion lasts before a probe query
	// re-tries the parallel engine (0 = 5s).
	DemotionPeriod time.Duration
	// Tenants maps tenant names to their QoS contracts; tenants absent
	// from the table get DefaultTenant. Nil = single-tenant service.
	Tenants map[string]TenantConfig
	// DefaultTenant is the contract applied to unlisted tenants (zero
	// value = weight 1, no caps).
	DefaultTenant TenantConfig

	// CheckpointEvery, MaxRetries, Backoff, and Limits parameterize each
	// query's EvaluateRecover run (zero values = RecoverOptions defaults).
	CheckpointEvery int
	MaxRetries      int
	Backoff         time.Duration
	Limits          Limits

	// CacheBytes, when > 0, enables the cross-query sharing layer: a
	// result cache of this many bytes keyed on window content + algorithm
	// + source (hits return Float64bits-identical snapshots with no engine
	// run), single-flight coalescing of concurrent identical queries,
	// multi-source batching of concurrent same-window queries, and
	// stable-vertex seeding of new queries from cached converged values.
	// Zero disables all of it. Per-tenant cache budgets come from
	// TenantConfig.CacheBytes.
	CacheBytes int64

	// Metrics, when non-nil, receives the service's gauges, counters, and
	// histograms, each query's recovery counters, and the Close-time
	// accounting audit.
	Metrics *MetricsRegistry

	// Store, when non-nil, durably spools every query's checkpoints so a
	// killed process resumes instead of recomputing. The service takes
	// ownership: Close closes the store (joining its accounting audit in
	// strict mode), Stats embeds its books, and RecoverOrphans re-admits
	// work a dead process left behind. Open one with
	// OpenCheckpointStore.
	Store *CheckpointStore
}

// NewQueryService builds a QueryService whose queries evaluate through
// EvaluateRecover on BOE schedules: checkpointed retries for transient
// faults, automatic parallel-to-sequential fallback on worker panics.
// Close(ctx) drains it; see the serve package for the full lifecycle.
func NewQueryService(opt ServeOptions) (*QueryService, error) {
	// The admission-layer bounds (Capacity, QueueDepth, PanicThreshold,
	// durations) are validated by serve.New; the per-query recovery knobs
	// are consumed here, so negative values must be refused here too
	// instead of silently misbehaving inside every evaluation.
	if opt.CheckpointEvery < 0 || opt.MaxRetries < 0 || opt.Backoff < 0 {
		return nil, megaerr.Invalidf(
			"mega: negative ServeOptions (CheckpointEvery=%d MaxRetries=%d Backoff=%s)",
			opt.CheckpointEvery, opt.MaxRetries, opt.Backoff)
	}
	// Durable-store identities fold the window's content fingerprint with
	// algo/source/tenant; fingerprinting iterates every edge, so memoize
	// per Window for the service's lifetime (windows are immutable).
	var fpMemo sync.Map // *Window -> uint64 fingerprint key
	storeID := func(req *QueryRequest) (CheckpointQueryID, bool) {
		if opt.Store == nil || req.Window == nil {
			return CheckpointQueryID{}, false
		}
		var key uint64
		if v, ok := fpMemo.Load(req.Window); ok {
			key = v.(uint64)
		} else {
			fp, err := engine.FingerprintBOE(req.Window)
			if err != nil {
				return CheckpointQueryID{}, false
			}
			key = fp.Key()
			fpMemo.Store(req.Window, key)
		}
		tenant := req.Tenant
		if tenant == "" {
			tenant = DefaultTenantName
		}
		return CheckpointQueryID{Win: key, Algo: uint32(req.Algo), Source: uint32(req.Source), Tenant: tenant}, true
	}
	run := func(ctx context.Context, req *QueryRequest, parallel bool) ([][]float64, serve.RunReport, error) {
		ropt := RecoverOptions{
			Parallel:        parallel,
			Workers:         req.Workers,
			CheckpointEvery: opt.CheckpointEvery,
			MaxRetries:      opt.MaxRetries,
			Backoff:         opt.Backoff,
			Limits:          opt.Limits,
			SeedBase:        req.SeedBase,
			Metrics:         opt.Metrics,
		}
		if id, ok := storeID(req); ok {
			ropt.Store = opt.Store
			ropt.StoreID = id
		}
		vals, rec, err := EvaluateRecover(ctx, req.Window, req.Algo, req.Source, BOE, ropt)
		var rep serve.RunReport
		if rec != nil {
			rep.Attempts = rec.Attempts
			rep.FellBack = rec.FellBack
			rep.Resumed = rec.DurableResume
			rep.Base = rec.Base
		}
		return vals, rep, err
	}
	// Multi-source batches run the single-pass Multi engine directly: the
	// expanded schedule has no checkpoint/resume story, so the recovery
	// wrapper does not apply.
	runMulti := func(ctx context.Context, reqs []*QueryRequest) ([][][]float64, serve.RunReport, error) {
		sources := make([]VertexID, len(reqs))
		for i, r := range reqs {
			sources[i] = r.Source
		}
		vals, err := EvaluateMultiSource(ctx, reqs[0].Window, reqs[0].Algo, sources, opt.Limits)
		return vals, serve.RunReport{Attempts: 1}, err
	}
	return serve.New(serve.Config{
		Run:                 run,
		RunMulti:            runMulti,
		Capacity:            opt.Capacity,
		QueueDepth:          opt.QueueDepth,
		DefaultDeadline:     opt.DefaultDeadline,
		DefaultQueueTimeout: opt.DefaultQueueTimeout,
		PanicThreshold:      opt.PanicThreshold,
		DemotionPeriod:      opt.DemotionPeriod,
		Tenants:             opt.Tenants,
		DefaultTenant:       opt.DefaultTenant,
		Metrics:             opt.Metrics,
		CacheBytes:          opt.CacheBytes,
		Store:               opt.Store,
	})
}
